"""Canonical structural signatures for networks and modules.

The cache key of the persistent model library (Section 3.1's premise: a
leaf module's timing model depends only on the module itself, never on
its environment).  Two requirements shape the design:

* **Name independence** — re-running a generator, renaming an instance,
  or re-emitting a netlist with different internal signal names must not
  invalidate cached models.  Signals are therefore labelled by *position*
  (inputs) or by *structure* (gates: type, delay, and fanin labels), so
  any renaming that preserves port order and connectivity hashes
  identically.  Stored models are positional for the same reason; the
  store re-keys them to the requesting module's port names on load.
* **Parameter sensitivity** — a model characterized with a different
  engine or different ``max_orders``/``max_tuples`` budgets is a
  different artifact, so those parameters are folded into the key
  (:func:`module_signature`).

Only the output cones matter: gates that reach no output do not affect
any timing model and are excluded from the hash.
"""

from __future__ import annotations

import hashlib

from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network

#: Bump when the canonical-form computation changes incompatibly.
SIGNATURE_VERSION = 1


def _canonical_labels(network: Network) -> dict[str, str]:
    """Structural label per signal, independent of signal names.

    Inputs are labelled by their declaration index; every gate by a hash
    of its type, delay, and (ordered) fanin labels.  Fanin order is kept
    as-is — some primitives (MUX) are not commutative, and keeping order
    is always sound for a cache key (at worst it misses an equivalence).
    """
    labels: dict[str, str] = {}
    for i, x in enumerate(network.inputs):
        labels[x] = f"i{i}"
    for sig in network.topological_order():
        if network.is_input(sig):
            continue
        gate = network.gate(sig)
        payload = "|".join(
            [gate.gtype.value, repr(float(gate.delay))]
            + [labels[f] for f in gate.fanins]
        )
        labels[sig] = hashlib.sha256(payload.encode()).hexdigest()[:24]
    return labels


def network_signature(network: Network) -> str:
    """Canonical structural hash of a network's output cones.

    Stable under internal signal renaming, gate insertion order, and
    port renaming (ports are positional); sensitive to gate types,
    delays, connectivity, input arity, and output order.
    """
    labels = _canonical_labels(network)
    payload = "\n".join(
        [
            f"repro-signature-v{SIGNATURE_VERSION}",
            f"inputs={len(network.inputs)}",
            *(labels[o] for o in network.outputs),
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def module_signature(
    module: Module | Network,
    engine: str = "sat",
    max_orders: int = 4,
    max_tuples: int = 8,
) -> str:
    """Cache key: structural hash combined with characterization knobs.

    ``engine`` participates because different tautology engines are
    allowed to differ in cost, never in result — but keeping the key
    engine-qualified makes cross-engine validation runs independent.
    """
    network = module.network if isinstance(module, Module) else module
    payload = "\n".join(
        [
            network_signature(network),
            f"engine={engine}",
            f"max_orders={int(max_orders)}",
            f"max_tuples={int(max_tuples)}",
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def design_signatures(
    design: HierDesign,
    engine: str = "sat",
    max_orders: int = 4,
    max_tuples: int = 8,
) -> dict[str, str]:
    """Cache key of every leaf module, keyed by module name."""
    return {
        name: module_signature(module, engine, max_orders, max_tuples)
        for name, module in design.modules.items()
    }
