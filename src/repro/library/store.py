"""Persistent, content-addressed store of characterized timing models.

Entries are keyed by :func:`~repro.library.signature.module_signature`
and stored *positionally* — input ports by index, one model per output
index — so a cached entry serves any module with the same structure
regardless of port names.  Two layers:

* an in-memory LRU (``max_memory_entries``) holding decoded tuples, and
* an optional on-disk JSON directory (one file per signature) written
  atomically via ``os.replace`` so readers never observe a torn entry.

Robustness: any unreadable, malformed, or schema-mismatched disk entry
is counted, moved aside into ``<cache-dir>/quarantine/`` for post-mortem
inspection, and treated as a cache miss — the caller falls back to
re-characterization and the next store writes a fresh entry.  Writes
take an exclusive :class:`~repro.resilience.locking.FileLock` (readers a
shared one) so concurrent analysis processes can share one cache
directory, and are fsync'd before the atomic ``os.replace`` so a crash
mid-store can never publish a torn entry.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.timing_model import TimingModel
from repro.library.stats import LibraryStats
from repro.obs.trace import Tracer, ensure_tracer
from repro.resilience.locking import FileLock

#: Subdirectory of ``cache_dir`` holding rejected entries.
QUARANTINE_DIR = "quarantine"

#: Format marker stored in every on-disk entry.
FORMAT_NAME = "repro-model-library"
#: Bump on incompatible payload changes; old entries then re-characterize.
FORMAT_VERSION = 1

#: Decoded in-memory entry: one tuple-set per output index.
_Entry = tuple[tuple[tuple[float, ...], ...], ...]


class ModelLibrary:
    """Content-addressed timing-model cache with an LRU memory layer.

    Parameters
    ----------
    cache_dir:
        Directory for persistent entries (created if missing).  ``None``
        keeps the library memory-only.
    max_memory_entries:
        LRU capacity of the in-memory layer (≥ 1).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when enabled the
        library emits timed ``cache-hit`` / ``cache-miss`` /
        ``cache-store`` events (phase ``"cache"``) per lookup and store.
    locking:
        Take an inter-process :class:`FileLock` around disk reads and
        writes (shared/exclusive).  Default on; a no-op on platforms
        without ``fcntl``.
    durable:
        ``fsync`` entry files before the atomic rename.  Disable only
        for throwaway caches where write latency matters more than
        crash safety.
    fault_plan:
        Optional :class:`~repro.resilience.faultinject.FaultPlan`; arms
        the ``store.read`` (garble an entry as it is decoded) and
        ``store.corrupt`` (garble an entry after it is persisted)
        injection points for robustness tests.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        max_memory_entries: int = 256,
        tracer: Tracer | None = None,
        locking: bool = True,
        durable: bool = True,
        fault_plan=None,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max(1, int(max_memory_entries))
        self._memory: OrderedDict[str, _Entry] = OrderedDict()
        self.tracer = ensure_tracer(tracer)
        self.stats = LibraryStats()
        self.durable = bool(durable)
        self.fault_plan = fault_plan
        lock_path = (
            self.cache_dir / ".lock"
            if self.cache_dir is not None
            else Path(".unused-lock")
        )
        self._lock = FileLock(
            lock_path, enabled=locking and self.cache_dir is not None
        )

    # ----------------------------------------------------------------- lookup
    def path_for(self, signature: str) -> Path | None:
        """On-disk location of one entry (``None`` when memory-only)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{signature}.json"

    def lookup(
        self,
        signature: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
    ) -> dict[str, TimingModel] | None:
        """Models re-keyed to ``inputs``/``outputs``, or ``None`` on miss.

        The positional payload must match the requested port arity; an
        arity mismatch means the signature collided with a different
        interface and is treated as corrupt.
        """
        t0 = time.perf_counter() if self.tracer.enabled else 0.0
        entry = self._memory.get(signature)
        if entry is not None:
            self._memory.move_to_end(signature)
            if len(entry) == len(outputs) and all(
                len(t) == len(inputs) for tuples in entry for t in tuples
            ):
                self.stats.hits += 1
                self.stats.memory_hits += 1
                self._trace_lookup("cache-hit", signature, t0, "memory")
                return self._rekey(entry, inputs, outputs)
            self._memory.pop(signature, None)
            self.stats.corrupt_entries += 1
        entry = self._read_disk(signature, len(inputs), len(outputs))
        if entry is not None:
            self._remember(signature, entry)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._trace_lookup("cache-hit", signature, t0, "disk")
            return self._rekey(entry, inputs, outputs)
        self.stats.misses += 1
        self._trace_lookup("cache-miss", signature, t0, None)
        return None

    def _trace_lookup(
        self, kind: str, signature: str, t0: float, layer: str | None
    ) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.count(f"library.{'hits' if layer else 'misses'}")
        attrs = {"signature": signature[:16]}
        if layer is not None:
            attrs["layer"] = layer
        self.tracer.event(
            kind,
            phase="cache",
            seconds=time.perf_counter() - t0,
            **attrs,
        )

    def _read_disk(
        self, signature: str, num_inputs: int, num_outputs: int
    ) -> _Entry | None:
        path = self.path_for(signature)
        if path is None:
            return None
        try:
            with self._lock.shared():
                raw = path.read_text()
        except OSError:
            return None
        if self.fault_plan is not None:
            rule = self.fault_plan.take("store.read", signature=signature)
            if rule is not None:
                raw = rule.message  # undecodable → real corrupt-entry path
        try:
            document = json.loads(raw)
        except (ValueError, RecursionError):
            return self._reject(path, "corrupt")
        if not isinstance(document, dict):
            return self._reject(path, "corrupt")
        if (
            document.get("format") != FORMAT_NAME
            or document.get("version") != FORMAT_VERSION
        ):
            return self._reject(path, "schema")
        try:
            if (
                document["signature"] != signature
                or int(document["num_inputs"]) != num_inputs
            ):
                return self._reject(path, "corrupt")
            models = document["models"]
            if len(models) != num_outputs:
                return self._reject(path, "corrupt")
            entry = tuple(
                tuple(
                    tuple(float(v) for v in tup) for tup in model["tuples"]
                )
                for model in models
            )
        except (KeyError, TypeError, ValueError):
            return self._reject(path, "corrupt")
        if any(
            not tuples or any(len(t) != num_inputs for t in tuples)
            for tuples in entry
        ):
            return self._reject(path, "corrupt")
        return entry

    def _reject(self, path: Path, reason: str) -> None:
        """Count a bad on-disk entry and move it into quarantine."""
        if reason == "schema":
            self.stats.schema_mismatches += 1
        else:
            self.stats.corrupt_entries += 1
        self.stats.quarantined += 1
        qdir = self.cache_dir / QUARANTINE_DIR
        try:
            with self._lock.exclusive():
                qdir.mkdir(exist_ok=True)
                os.replace(path, qdir / path.name)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        if self.tracer.enabled:
            self.tracer.count("library.quarantined")
            self.tracer.event(
                "cache-quarantine",
                phase="cache",
                entry=path.name,
                reason=reason,
            )
        return None

    @staticmethod
    def _rekey(
        entry: _Entry, inputs: Sequence[str], outputs: Sequence[str]
    ) -> dict[str, TimingModel]:
        return {
            out: TimingModel(out, tuple(inputs), entry[j])
            for j, out in enumerate(outputs)
        }

    # ------------------------------------------------------------------ store
    def store(
        self,
        signature: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        models: Mapping[str, TimingModel],
    ) -> None:
        """Persist one module's models under ``signature``.

        ``models`` must hold one model per output, aligned with
        ``inputs`` (the shape produced by ``characterize_network``).
        """
        t0 = time.perf_counter() if self.tracer.enabled else 0.0
        entry: _Entry = tuple(models[out].tuples for out in outputs)
        self._remember(signature, entry)
        self.stats.stores += 1
        path = self.path_for(signature)
        if path is None:
            self._trace_store(signature, t0, persisted=False)
            return
        document = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "signature": signature,
            "num_inputs": len(inputs),
            "models": [
                {"tuples": [list(t) for t in tuples]} for tuples in entry
            ],
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{signature[:16]}.", suffix=".tmp", dir=self.cache_dir
        )
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(document, fp)
                if self.durable:
                    fp.flush()
                    os.fsync(fp.fileno())
            with self._lock.exclusive():
                os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.fault_plan is not None:
            rule = self.fault_plan.take("store.corrupt", signature=signature)
            if rule is not None:
                # Data fault: garble the persisted entry and forget the
                # in-memory copy so the next lookup must decode the file.
                path.write_text(rule.message)
                self._memory.pop(signature, None)
        self._trace_store(signature, t0, persisted=True)

    def _trace_store(
        self, signature: str, t0: float, persisted: bool
    ) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.count("library.stores")
        self.tracer.event(
            "cache-store",
            phase="cache",
            seconds=time.perf_counter() - t0,
            signature=signature[:16],
            persisted=persisted,
        )

    def _remember(self, signature: str, entry: _Entry) -> None:
        self._memory[signature] = entry
        self._memory.move_to_end(signature)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------ misc
    def __len__(self) -> int:
        """Number of entries currently in the memory layer."""
        return len(self._memory)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.cache_dir) if self.cache_dir else "memory-only"
        return f"ModelLibrary({where!r}, entries={len(self._memory)})"
