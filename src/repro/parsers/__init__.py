"""Netlist file formats: ISCAS .bench, combinational BLIF, structural Verilog."""

from repro.parsers.bench import dumps_bench, loads_bench, read_bench, write_bench
from repro.parsers.blif import dumps_blif, loads_blif, read_blif, write_blif
from repro.parsers.verilog import (
    dumps_verilog,
    loads_verilog,
    read_verilog,
    write_verilog,
)

__all__ = [
    "dumps_bench",
    "dumps_blif",
    "dumps_verilog",
    "loads_bench",
    "loads_blif",
    "loads_verilog",
    "read_bench",
    "read_blif",
    "read_verilog",
    "write_bench",
    "write_blif",
    "write_verilog",
]
