"""BLIF (Berkeley Logic Interchange Format) subset reader/writer.

Supports the combinational core of BLIF as used by SIS-era tools:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (sum-of-products tables)
and ``.end``.  Each ``.names`` table is decomposed into AND/OR/NOT gates
(one AND per cube, one OR to merge, inverters as needed); single-literal
buffers collapse to BUF/NOT.  Latches and subcircuits are rejected — the
library analyzes flat combinational blocks, and hierarchy is expressed via
:class:`~repro.netlist.hierarchy.HierDesign` instead.
"""

from __future__ import annotations

import io
from typing import TextIO

from repro.errors import ParseError
from repro.netlist.gates import GateType
from repro.netlist.network import Network


def _logical_lines(stream: TextIO):
    """Yield (lineno, line) with backslash continuations joined."""
    buffer = ""
    start = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].rstrip("\n")
        if not buffer:
            start = lineno
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        buffer += line
        if buffer.strip():
            yield start, buffer.strip()
        buffer = ""
    if buffer.strip():
        yield start, buffer.strip()


def read_blif(stream: TextIO, gate_delay: float = 1.0) -> Network:
    """Parse a combinational BLIF model into a :class:`Network`.

    ``gate_delay`` is assigned to each decomposed AND/OR/NOT level.
    """
    model_name = "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    tables: list[tuple[str, list[str], list[tuple[str, str]], int]] = []
    current: tuple[str, list[str], list[tuple[str, str]], int] | None = None

    for lineno, line in _logical_lines(stream):
        tokens = line.split()
        if tokens[0].startswith("."):
            directive = tokens[0]
            if directive == ".model":
                model_name = tokens[1] if len(tokens) > 1 else model_name
            elif directive == ".inputs":
                inputs.extend(tokens[1:])
            elif directive == ".outputs":
                outputs.extend(tokens[1:])
            elif directive == ".names":
                if len(tokens) < 2:
                    raise ParseError(".names needs at least an output", lineno)
                current = (tokens[-1], tokens[1:-1], [], lineno)
                tables.append(current)
            elif directive == ".end":
                current = None
            elif directive in (".latch", ".subckt", ".gate", ".mlatch"):
                raise ParseError(
                    f"{directive} is not supported (combinational BLIF only)",
                    lineno,
                )
            else:
                # silently ignore benign directives (.default_input_arrival…)
                current = None
            continue
        if current is None:
            raise ParseError(f"cube line outside .names: {line!r}", lineno)
        if len(current[1]) == 0:
            # constant table: single '0'/'1' output line
            if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                raise ParseError(f"bad constant cube {line!r}", lineno)
            current[2].append(("", tokens[0]))
        else:
            if len(tokens) != 2:
                raise ParseError(f"bad cube {line!r}", lineno)
            mask, value = tokens
            if len(mask) != len(current[1]):
                raise ParseError(
                    f"cube width {len(mask)} != {len(current[1])} inputs",
                    lineno,
                )
            if any(c not in "01-" for c in mask) or value not in ("0", "1"):
                raise ParseError(f"bad cube {line!r}", lineno)
            current[2].append((mask, value))

    net = Network(model_name)
    for x in inputs:
        net.add_input(x)

    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"_{prefix}{counter[0]}"

    def build_table(
        out: str, table_inputs: list[str], cubes: list[tuple[str, str]], lineno: int
    ) -> None:
        if not cubes:  # empty table = constant 0 by BLIF convention
            net.add_gate(out, GateType.CONST0, (), 0.0)
            return
        phases = {v for _, v in cubes}
        if len(phases) != 1:
            raise ParseError(
                f"mixed on/off cubes in .names {out}", lineno
            )
        phase = phases.pop()
        if not table_inputs:
            gtype = GateType.CONST1 if phase == "1" else GateType.CONST0
            net.add_gate(out, gtype, (), 0.0)
            return
        inverters: dict[str, str] = {}

        def literal(sig: str, positive: bool) -> str:
            if positive:
                return sig
            if sig not in inverters:
                inverters[sig] = net.add_gate(
                    fresh("n"), GateType.NOT, (sig,), gate_delay
                )
            return inverters[sig]

        terms: list[str] = []
        for mask, _ in cubes:
            lits = [
                literal(sig, c == "1")
                for sig, c in zip(table_inputs, mask)
                if c != "-"
            ]
            if not lits:
                # a full don't-care cube makes the function constant
                terms = []
                break
            if len(lits) == 1:
                terms.append(lits[0])
            else:
                terms.append(
                    net.add_gate(fresh("a"), GateType.AND, lits, gate_delay)
                )
        if not terms:
            gtype = GateType.CONST1 if phase == "1" else GateType.CONST0
            net.add_gate(out, gtype, (), 0.0)
            return
        if len(terms) == 1:
            merged = terms[0]
            final_type = GateType.BUF if phase == "1" else GateType.NOT
            net.add_gate(
                out,
                final_type,
                (merged,),
                0.0 if final_type is GateType.BUF else gate_delay,
            )
            return
        merge_type = GateType.OR if phase == "1" else GateType.NOR
        net.add_gate(out, merge_type, terms, gate_delay)

    # Tables may be listed out of dependency order.
    pending = list(tables)
    defined = set(inputs)
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for out, table_inputs, cubes, lineno in pending:
            if all(i in defined for i in table_inputs):
                build_table(out, table_inputs, cubes, lineno)
                defined.add(out)
                progress = True
            else:
                remaining.append((out, table_inputs, cubes, lineno))
        pending = remaining
    if pending:
        missing = sorted(
            {
                i
                for _, table_inputs, _, _ in pending
                for i in table_inputs
                if i not in defined
            }
        )
        raise ParseError(
            f"undefined signals (or cycle): {missing[:5]!r}", pending[0][3]
        )
    for o in outputs:
        if not net.has_signal(o):
            raise ParseError(f".outputs names undefined signal {o!r}")
    net.set_outputs(outputs)
    return net


def loads_blif(text: str, gate_delay: float = 1.0) -> Network:
    """Parse BLIF text."""
    return read_blif(io.StringIO(text), gate_delay)


_SIMPLE_CUBES = {
    GateType.AND: lambda n: [("1" * n, "1")],
    GateType.NAND: lambda n: [("1" * n, "0")],
    GateType.OR: lambda n: [
        ("-" * i + "1" + "-" * (n - i - 1), "1") for i in range(n)
    ],
    GateType.NOR: lambda n: [("0" * n, "1")],
    GateType.NOT: lambda n: [("0", "1")],
    GateType.BUF: lambda n: [("1", "1")],
}


def write_blif(network: Network, stream: TextIO) -> None:
    """Serialize a network as BLIF (each gate becomes one .names table)."""
    stream.write(f".model {network.name}\n")
    stream.write(".inputs " + " ".join(network.inputs) + "\n")
    stream.write(".outputs " + " ".join(network.outputs) + "\n")
    for s in network.topological_order():
        if network.is_input(s):
            continue
        g = network.gate(s)
        n = len(g.fanins)
        stream.write(f".names {' '.join(g.fanins)} {g.name}\n".replace("  ", " "))
        if g.gtype in _SIMPLE_CUBES:
            cubes = _SIMPLE_CUBES[g.gtype](n)
        elif g.gtype in (GateType.XOR, GateType.XNOR):
            parity = 1 if g.gtype is GateType.XOR else 0
            cubes = [
                ("".join("1" if (bits >> i) & 1 else "0" for i in range(n)), "1")
                for bits in range(1 << n)
                if bin(bits).count("1") % 2 == parity
            ]
        elif g.gtype is GateType.MUX:
            cubes = [("01-", "1"), ("1-1", "1")]
        elif g.gtype is GateType.CONST1:
            cubes = [("", "1")]
        elif g.gtype is GateType.CONST0:
            cubes = []
        else:  # pragma: no cover - enum exhausted
            raise ParseError(f"cannot serialize gate type {g.gtype!r}")
        for mask, value in cubes:
            stream.write(f"{mask} {value}\n".lstrip())
    stream.write(".end\n")


def dumps_blif(network: Network) -> str:
    """Serialize to a BLIF string."""
    buf = io.StringIO()
    write_blif(network, buf)
    return buf.getvalue()
