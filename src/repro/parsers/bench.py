"""ISCAS ``.bench`` format reader/writer.

The classic ISCAS-85/89 textual netlist format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)

Supported gate keywords: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF,
MUX, CONST0/CONST1.  Gate delays are not part of the format; a delay policy
(default 1.0 per gate, 0 for BUF) is applied on read and can be overridden
afterwards with :mod:`repro.sta.delays` helpers.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from repro.errors import ParseError
from repro.netlist.gates import GateType
from repro.netlist.network import Network

_LINE = re.compile(
    r"^(?P<name>[^=\s]+)\s*=\s*(?P<op>[A-Za-z01]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_DECL = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[^)\s]+)\)\s*$")

_OP_ALIASES = {
    "BUFF": "BUF",
    "DFF": None,  # sequential elements are rejected explicitly
}


def read_bench(stream: TextIO, name: str = "bench") -> Network:
    """Parse a ``.bench`` file into a :class:`Network`."""
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[tuple[str, str, list[str], int]] = []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL.match(line)
        if decl:
            if decl.group("kind") == "INPUT":
                inputs.append(decl.group("name"))
            else:
                outputs.append(decl.group("name"))
            continue
        m = _LINE.match(line)
        if not m:
            raise ParseError(f"unrecognized line {line!r}", lineno)
        op = m.group("op").upper()
        op = _OP_ALIASES.get(op, op)
        if op is None:
            raise ParseError(
                "sequential elements (DFF) are not supported; the library "
                "analyzes combinational blocks between latches",
                lineno,
            )
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        gates.append((m.group("name"), op, args, lineno))

    net = Network(name)
    for x in inputs:
        net.add_input(x)
    # Gates may reference signals defined later in the file: sort by
    # dependency with an explicit worklist.
    pending = list(gates)
    defined = set(inputs)
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for gname, op, args, lineno in pending:
            if all(a in defined for a in args):
                try:
                    gtype = GateType(op)
                except ValueError:
                    raise ParseError(f"unknown gate type {op!r}", lineno) from None
                delay = 0.0 if gtype in (
                    GateType.BUF, GateType.CONST0, GateType.CONST1
                ) else 1.0
                net.add_gate(gname, gtype, args, delay)
                defined.add(gname)
                progress = True
            else:
                remaining.append((gname, op, args, lineno))
        pending = remaining
    if pending:
        missing = sorted(
            {a for _, _, args, _ in pending for a in args if a not in defined}
        )
        raise ParseError(
            f"undefined signals (or combinational cycle): {missing[:5]!r}",
            pending[0][3],
        )
    for o in outputs:
        if not net.has_signal(o):
            raise ParseError(f"OUTPUT({o}) never defined")
    net.set_outputs(outputs)
    return net


def loads_bench(text: str, name: str = "bench") -> Network:
    """Parse ``.bench`` text."""
    return read_bench(io.StringIO(text), name)


def write_bench(network: Network, stream: TextIO) -> None:
    """Serialize a network in ``.bench`` format (delays are not recorded)."""
    stream.write(f"# {network.name}\n")
    for x in network.inputs:
        stream.write(f"INPUT({x})\n")
    for o in network.outputs:
        stream.write(f"OUTPUT({o})\n")
    for s in network.topological_order():
        if network.is_input(s):
            continue
        g = network.gate(s)
        op = "BUFF" if g.gtype is GateType.BUF else g.gtype.value
        stream.write(f"{g.name} = {op}({', '.join(g.fanins)})\n")


def dumps_bench(network: Network) -> str:
    """Serialize to a ``.bench`` string."""
    buf = io.StringIO()
    write_bench(network, buf)
    return buf.getvalue()
