"""Structural Verilog subset reader/writer.

Supports the gate-level structural subset that SIS-era and academic flows
exchange:

* ``module`` / ``endmodule`` with a port list,
* ``input``, ``output``, ``wire`` declarations (scalar nets only),
* primitive gate instantiations — ``and/or/nand/nor/xor/xnor/not/buf``
  with the Verilog convention ``gate g1 (out, in1, in2, ...)``,
* hierarchical module instantiations with named (``.port(net)``) or
  positional connections,
* ``//`` and ``/* */`` comments.

A file whose modules instantiate only primitives parses to flat
:class:`Network` objects; a top module instantiating other modules parses
to a depth-1 :class:`HierDesign` (deeper nesting is rejected with a clear
message — flatten inner levels first or compose with
:mod:`repro.core.multilevel`).  Vectors, ``assign``, behavioural blocks
and parameters are out of scope and rejected explicitly.
"""

from __future__ import annotations

import io
import re
from dataclasses import dataclass, field
from typing import TextIO

from repro.errors import ParseError
from repro.netlist.gates import GateType
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_UNSUPPORTED = {
    "assign", "always", "initial", "reg", "parameter", "localparam",
    "generate", "function", "task", "specify",
}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_IDENT_RE = re.compile(_IDENT)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


@dataclass
class _RawInstance:
    kind: str            # primitive keyword or module name
    name: str
    positional: list[str] = field(default_factory=list)
    named: dict[str, str] = field(default_factory=dict)


@dataclass
class _RawModule:
    name: str
    ports: list[str]
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    wires: list[str] = field(default_factory=list)
    instances: list[_RawInstance] = field(default_factory=list)


def _split_statements(body: str) -> list[str]:
    return [s.strip() for s in body.split(";") if s.strip()]


def _parse_connection_list(text: str, where: str) -> _RawInstance:
    m = re.match(
        rf"^({_IDENT})\s+({_IDENT})\s*\((.*)\)$", text.strip(), flags=re.S
    )
    if not m:
        raise ParseError(f"unparsable instantiation {where}: {text[:60]!r}")
    kind, name, args = m.group(1), m.group(2), m.group(3)
    inst = _RawInstance(kind=kind, name=name)
    args = args.strip()
    if not args:
        return inst
    parts = [p.strip() for p in args.split(",")]
    for part in parts:
        named = re.match(rf"^\.({_IDENT})\s*\(\s*({_IDENT})?\s*\)$", part)
        if named:
            port, net = named.group(1), named.group(2)
            if net is None:
                raise ParseError(
                    f"unconnected port .{port}() on {name!r} is not supported"
                )
            if port in inst.named:
                raise ParseError(f"duplicate connection .{port} on {name!r}")
            inst.named[port] = net
            continue
        if not _IDENT_RE.fullmatch(part):
            raise ParseError(
                f"unsupported connection {part!r} on {name!r} "
                "(scalar nets only)"
            )
        inst.positional.append(part)
    if inst.named and inst.positional:
        raise ParseError(
            f"instance {name!r} mixes named and positional connections"
        )
    return inst


def _parse_module(header: str, body: str) -> _RawModule:
    m = re.match(
        rf"^module\s+({_IDENT})\s*(?:\((.*?)\))?\s*$", header.strip(), flags=re.S
    )
    if not m:
        raise ParseError(f"bad module header {header[:60]!r}")
    name = m.group(1)
    ports = []
    if m.group(2):
        ports = [p.strip() for p in m.group(2).split(",") if p.strip()]
        for p in ports:
            if not _IDENT_RE.fullmatch(p):
                raise ParseError(
                    f"module {name!r}: unsupported port {p!r} (scalar only)"
                )
    raw = _RawModule(name=name, ports=ports)
    for statement in _split_statements(body):
        keyword = statement.split(None, 1)[0]
        if keyword in _UNSUPPORTED:
            raise ParseError(
                f"module {name!r}: {keyword!r} is outside the structural "
                "subset supported by this reader"
            )
        if keyword in ("input", "output", "wire"):
            rest = statement[len(keyword):]
            if "[" in rest:
                raise ParseError(
                    f"module {name!r}: vector declarations are not supported"
                )
            names = [n.strip() for n in rest.split(",") if n.strip()]
            for n in names:
                if not _IDENT_RE.fullmatch(n):
                    raise ParseError(
                        f"module {name!r}: bad identifier {n!r}"
                    )
            getattr(raw, {"input": "inputs", "output": "outputs",
                          "wire": "wires"}[keyword]).extend(names)
            continue
        raw.instances.append(
            _parse_connection_list(statement, f"in module {name!r}")
        )
    declared = set(raw.inputs) | set(raw.outputs)
    for p in raw.ports:
        if p not in declared:
            raise ParseError(
                f"module {name!r}: port {p!r} has no input/output declaration"
            )
    return raw


def _parse_file(text: str) -> list[_RawModule]:
    text = _strip_comments(text)
    modules = []
    for m in re.finditer(
        r"\bmodule\b(.*?)\bendmodule\b", text, flags=re.S
    ):
        chunk = "module" + m.group(1)
        header, _, body = chunk.partition(";")
        modules.append(_parse_module(header, body))
    if not modules:
        raise ParseError("no module found")
    return modules


def _build_network(raw: _RawModule, gate_delay: float) -> Network:
    net = Network(raw.name)
    for x in raw.inputs:
        net.add_input(x)
    pending = list(raw.instances)
    # primitive outputs define signals; resolve in dependency order
    defined = set(raw.inputs)
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for inst in pending:
            if inst.kind not in _PRIMITIVES:
                raise ParseError(
                    f"module {raw.name!r}: unknown primitive or nested "
                    f"module {inst.kind!r} inside a leaf module"
                )
            if inst.named:
                raise ParseError(
                    f"primitive {inst.name!r}: primitives use positional "
                    "connections (out, in...)"
                )
            if len(inst.positional) < 2:
                raise ParseError(
                    f"primitive {inst.name!r} needs an output and inputs"
                )
            out, *ins = inst.positional
            if all(i in defined for i in ins):
                gtype = _PRIMITIVES[inst.kind]
                delay = 0.0 if gtype is GateType.BUF else gate_delay
                net.add_gate(out, gtype, ins, delay)
                defined.add(out)
                progress = True
            else:
                remaining.append(inst)
        pending = remaining
    if pending:
        missing = sorted(
            {
                i
                for inst in pending
                for i in inst.positional[1:]
                if i not in defined
            }
        )
        raise ParseError(
            f"module {raw.name!r}: undefined signals (or cycle): "
            f"{missing[:5]!r}"
        )
    for o in raw.outputs:
        if not net.has_signal(o):
            raise ParseError(
                f"module {raw.name!r}: output {o!r} is never driven"
            )
    net.set_outputs(raw.outputs)
    return net


def read_verilog(
    stream: TextIO, gate_delay: float = 1.0
) -> Network | HierDesign:
    """Parse structural Verilog.

    Returns a :class:`Network` when the file holds a single all-primitive
    module, or a :class:`HierDesign` when the last module instantiates the
    earlier ones (depth-1 hierarchy).
    """
    raws = _parse_file(stream.read())
    by_name = {r.name: r for r in raws}
    if len(raws) != len(by_name):
        raise ParseError("duplicate module names")

    def is_leaf(raw: _RawModule) -> bool:
        return all(i.kind in _PRIMITIVES for i in raw.instances)

    top = raws[-1]
    if len(raws) == 1 and is_leaf(top):
        return _build_network(top, gate_delay)

    leaves = {r.name: r for r in raws if r.name != top.name}
    for r in leaves.values():
        if not is_leaf(r):
            raise ParseError(
                f"module {r.name!r} nests module instances; only depth-1 "
                "hierarchies are supported (flatten inner levels or "
                "compose with repro.core.multilevel)"
            )
    design = HierDesign(top.name)
    for r in raws[:-1]:
        design.add_module(Module(r.name, _build_network(r, gate_delay)))
    for x in top.inputs:
        design.add_input(x)
    for inst in top.instances:
        if inst.kind in _PRIMITIVES:
            raise ParseError(
                f"top module {top.name!r} mixes primitives with module "
                "instances; move glue logic into a leaf module"
            )
        if inst.kind not in leaves:
            raise ParseError(f"unknown module {inst.kind!r}")
        module = design.modules[inst.kind]
        if inst.positional:
            ports = by_name[inst.kind].ports
            if len(inst.positional) != len(ports):
                raise ParseError(
                    f"instance {inst.name!r}: {len(inst.positional)} "
                    f"connections for {len(ports)} ports"
                )
            connections = dict(zip(ports, inst.positional))
        else:
            connections = dict(inst.named)
        design.add_instance(inst.name, inst.kind, connections)
    design.set_outputs(top.outputs)
    design.validate()
    return design


def loads_verilog(text: str, gate_delay: float = 1.0) -> Network | HierDesign:
    """Parse structural Verilog from a string."""
    return read_verilog(io.StringIO(text), gate_delay)


_REVERSE = {v: k for k, v in _PRIMITIVES.items()}


def _check_identifier(name: str, what: str) -> None:
    if not _IDENT_RE.fullmatch(name):
        raise ParseError(
            f"{what} {name!r} is not a legal Verilog identifier; "
            "rename it (e.g. replace '.' with '_') before writing"
        )


def _write_leaf(network: Network, stream: TextIO) -> None:
    _check_identifier(network.name, "module name")
    for s in network.signals():
        _check_identifier(s, "signal")
    ports = ", ".join((*network.inputs, *network.outputs))
    stream.write(f"module {network.name} ({ports});\n")
    if network.inputs:
        stream.write("  input " + ", ".join(network.inputs) + ";\n")
    if network.outputs:
        stream.write("  output " + ", ".join(network.outputs) + ";\n")
    wires = [
        s for s in network.gates
        if s not in network.outputs
    ]
    if wires:
        stream.write("  wire " + ", ".join(wires) + ";\n")
    idx = 0
    for s in network.topological_order():
        if network.is_input(s):
            continue
        g = network.gate(s)
        if g.gtype in _REVERSE:
            keyword = _REVERSE[g.gtype]
            # the U$ prefix keeps instance names disjoint from signal
            # names ('$' never occurs in generator/parser signal prefixes)
            stream.write(
                f"  {keyword} U${idx} ({g.name}, {', '.join(g.fanins)});\n"
            )
        elif g.gtype is GateType.MUX:
            # decompose: out = (s & d1) | (~s & d0)
            sel, d0, d1 = g.fanins
            stream.write(f"  wire {g.name}$ns, {g.name}$a0, {g.name}$a1;\n")
            stream.write(f"  not U${idx}n ({g.name}$ns, {sel});\n")
            stream.write(f"  and U${idx}a0 ({g.name}$a0, {g.name}$ns, {d0});\n")
            stream.write(f"  and U${idx}a1 ({g.name}$a1, {sel}, {d1});\n")
            stream.write(
                f"  or U${idx} ({g.name}, {g.name}$a0, {g.name}$a1);\n"
            )
        elif g.gtype in (GateType.CONST0, GateType.CONST1):
            raise ParseError(
                "constant gates cannot be expressed in the structural "
                "subset; replace them before writing Verilog"
            )
        idx += 1
    stream.write("endmodule\n")


def write_verilog(circuit: Network | HierDesign, stream: TextIO) -> None:
    """Serialize a network or depth-1 design as structural Verilog.

    MUX gates are decomposed into NOT/AND/OR (the consensus tightness of
    the primitive MUX is a property of our delay model, not of the
    netlist); constants are rejected.
    """
    if isinstance(circuit, Network):
        _write_leaf(circuit, stream)
        return
    design = circuit
    _check_identifier(design.name, "design name")
    for inst in design.instances.values():
        _check_identifier(inst.name, "instance name")
        for net in inst.connections.values():
            _check_identifier(net, "net")
    for module in design.modules.values():
        _write_leaf(module.network, stream)
        stream.write("\n")
    ports = ", ".join((*design.inputs, *design.outputs))
    stream.write(f"module {design.name} ({ports});\n")
    stream.write("  input " + ", ".join(design.inputs) + ";\n")
    stream.write("  output " + ", ".join(design.outputs) + ";\n")
    internal = sorted(
        {
            net
            for inst in design.instances.values()
            for net in inst.connections.values()
        }
        - set(design.inputs)
        - set(design.outputs)
    )
    if internal:
        stream.write("  wire " + ", ".join(internal) + ";\n")
    for inst in design.instances.values():
        conns = ", ".join(
            f".{port}({net})" for port, net in inst.connections.items()
        )
        stream.write(f"  {inst.module_name} {inst.name} ({conns});\n")
    stream.write("endmodule\n")


def dumps_verilog(circuit: Network | HierDesign) -> str:
    """Serialize to a Verilog string."""
    buf = io.StringIO()
    write_verilog(circuit, buf)
    return buf.getvalue()
