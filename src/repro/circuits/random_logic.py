"""Seeded random multi-level logic with reconvergent fanout.

Used as an ISCAS-flavoured workload where the original benchmark netlists
are unavailable (see DESIGN.md, substitution table).  Generation is fully
deterministic per seed.
"""

from __future__ import annotations

import random

from repro.errors import NetlistError
from repro.netlist.network import Network

_GATE_POOL = ["AND", "OR", "NAND", "NOR", "XOR", "MUX", "NOT"]


def random_network(
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    num_outputs: int | None = None,
    locality: int = 12,
    name: str | None = None,
) -> Network:
    """Random reconvergent combinational DAG.

    Parameters
    ----------
    locality:
        Fanins are drawn from the most recent ``locality`` signals with
        high probability, yielding deep, reconvergent structure rather
        than a shallow random bipartite mess.
    """
    if num_inputs < 2:
        raise NetlistError("random_network needs at least 2 inputs")
    if num_gates < 1:
        raise NetlistError("random_network needs at least 1 gate")
    rng = random.Random(seed)
    net = Network(name or f"rand_i{num_inputs}_g{num_gates}_s{seed}")
    signals = [net.add_input(f"x{i}") for i in range(num_inputs)]

    def pick(count: int) -> list[str]:
        chosen: list[str] = []
        while len(chosen) < count:
            if len(signals) > locality and rng.random() < 0.75:
                cand = signals[-rng.randint(1, locality)]
            else:
                cand = rng.choice(signals)
            if cand not in chosen:
                chosen.append(cand)
        return chosen

    for idx in range(num_gates):
        gtype = rng.choice(_GATE_POOL)
        if gtype == "NOT":
            fanins = pick(1)
        elif gtype == "MUX":
            fanins = pick(3)
        elif gtype == "XOR":
            fanins = pick(2)
        else:
            fanins = pick(rng.randint(2, 3))
        delay = 2.0 if gtype in ("XOR", "MUX") else 1.0
        signals.append(net.add_gate(f"n{idx}", gtype, fanins, delay))

    if num_outputs is None:
        num_outputs = max(1, num_inputs // 4)
    # Prefer signals near the end (deepest); always include the last gate.
    fanout_counts: dict[str, int] = {s: 0 for s in signals}
    for g in net.gates.values():
        for f in g.fanins:
            fanout_counts[f] += 1
    sinks = [
        s for s in signals
        if not net.is_input(s) and fanout_counts[s] == 0
    ]
    outputs = list(dict.fromkeys(sinks))[: num_outputs]
    extra = [s for s in reversed(signals) if not net.is_input(s)]
    for s in extra:
        if len(outputs) >= num_outputs:
            break
        if s not in outputs:
            outputs.append(s)
    net.set_outputs(outputs)
    return net
