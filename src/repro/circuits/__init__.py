"""Benchmark circuit generators and partitioning."""

from repro.circuits.adders import (
    carry_select_adder,
    carry_skip_block,
    cascade_adder,
    full_adder,
    ripple_adder,
)
from repro.circuits.datapath import (
    array_multiplier,
    barrel_shifter,
    wallace_multiplier,
)
from repro.circuits.iscaslike import (
    SUITE,
    alu,
    c17,
    shared_select_chain,
    table2_circuits,
)
from repro.circuits.partition import (
    cascade_bipartition,
    group_cascade,
    subnetwork,
)
from repro.circuits.random_logic import random_network
from repro.circuits.trees import (
    and_or_tree,
    carry_lookahead_adder,
    comparator,
    mux_tree,
    parity_tree,
    priority_encoder,
)

__all__ = [
    "SUITE",
    "alu",
    "and_or_tree",
    "array_multiplier",
    "barrel_shifter",
    "c17",
    "group_cascade",
    "shared_select_chain",
    "carry_lookahead_adder",
    "carry_select_adder",
    "carry_skip_block",
    "cascade_adder",
    "cascade_bipartition",
    "comparator",
    "full_adder",
    "mux_tree",
    "parity_tree",
    "priority_encoder",
    "random_network",
    "ripple_adder",
    "subnetwork",
    "table2_circuits",
    "wallace_multiplier",
]
