"""Datapath workloads beyond the paper's adders.

Array multipliers and barrel shifters are the classic next-hardest
functional-timing workloads: multipliers are dense with reconvergent carry
logic, barrel shifters with cascaded multiplexers.  Both use the Section-4
delay style (AND/OR 1, XOR/MUX 2).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.network import Network

_AND_OR = 1.0
_XOR_MUX = 2.0


def array_multiplier(
    width_a: int, width_b: int | None = None, name: str | None = None
) -> Network:
    """Ripple-carry array multiplier: ``p = a * b``.

    Partial products feed a grid of half/full adder cells; the product is
    ``width_a + width_b`` bits.
    """
    if width_b is None:
        width_b = width_a
    if width_a < 1 or width_b < 1:
        raise NetlistError("multiplier widths must be positive")
    net = Network(name or f"mul{width_a}x{width_b}")
    a = [net.add_input(f"a{i}") for i in range(width_a)]
    b = [net.add_input(f"b{j}") for j in range(width_b)]
    pp = [
        [
            net.add_gate(f"pp{i}_{j}", "AND", [a[i], b[j]], _AND_OR)
            for j in range(width_b)
        ]
        for i in range(width_a)
    ]

    def half_adder(tag: str, x: str, y: str) -> tuple[str, str]:
        s = net.add_gate(f"hs{tag}", "XOR", [x, y], _XOR_MUX)
        c = net.add_gate(f"hc{tag}", "AND", [x, y], _AND_OR)
        return s, c

    def full_adder(tag: str, x: str, y: str, z: str) -> tuple[str, str]:
        p = net.add_gate(f"fp{tag}", "XOR", [x, y], _XOR_MUX)
        s = net.add_gate(f"fs{tag}", "XOR", [p, z], _XOR_MUX)
        g = net.add_gate(f"fg{tag}", "AND", [x, y], _AND_OR)
        t = net.add_gate(f"ft{tag}", "AND", [p, z], _AND_OR)
        c = net.add_gate(f"fc{tag}", "OR", [g, t], _AND_OR)
        return s, c

    # Row-by-row accumulation.  ``acc[k]`` holds bit (i + k) of the sum of
    # rows 0..i-1; each row contributes its partial products at offset 0 of
    # the current view, after which the lowest bit is final and emitted.
    acc: list[str] = list(pp[0])
    products: list[str] = [acc.pop(0)]  # bit 0 = pp0_0
    for i in range(1, width_a):
        row = pp[i]
        summed: list[str] = []
        carry: str | None = None
        for k in range(max(width_b, len(acc))):
            x = row[k] if k < width_b else None
            y = acc[k] if k < len(acc) else None
            tag = f"{i}_{k}"
            operands = [v for v in (x, y, carry) if v is not None]
            if len(operands) == 3:
                s, carry = full_adder(tag, *operands)
            elif len(operands) == 2:
                s, carry = half_adder(tag, *operands)
            elif len(operands) == 1:
                s, carry = operands[0], None
            else:  # pragma: no cover - loop bound prevents this
                break
            summed.append(s)
        if carry is not None:
            summed.append(carry)
        products.append(summed.pop(0))
        acc = summed
    products.extend(acc)
    outputs = []
    for k, sig in enumerate(products):
        outputs.append(net.add_gate(f"p{k}", "BUF", [sig], 0.0))
    net.set_outputs(outputs)
    return net


def barrel_shifter(stages: int, name: str | None = None) -> Network:
    """Logarithmic left barrel shifter: ``y = d << shamt`` (zero fill).

    ``stages`` select bits shift a ``2**stages``-bit word; each stage is a
    rank of MUXes controlled by one shift-amount bit.
    """
    if stages < 1:
        raise NetlistError("barrel_shifter needs at least 1 stage")
    width = 1 << stages
    net = Network(name or f"bshift{width}")
    shamt = [net.add_input(f"s{k}") for k in range(stages)]
    word = [net.add_input(f"d{i}") for i in range(width)]
    zero = net.add_gate("zero", "CONST0", (), 0.0)
    current = word
    for k, sel in enumerate(shamt):
        offset = 1 << k
        nxt = []
        for i in range(width):
            shifted = current[i - offset] if i >= offset else zero
            nxt.append(
                net.add_gate(
                    f"m{k}_{i}", "MUX", [sel, current[i], shifted], _XOR_MUX
                )
            )
        current = nxt
    outputs = []
    for i, sig in enumerate(current):
        outputs.append(net.add_gate(f"y{i}", "BUF", [sig], 0.0))
    net.set_outputs(outputs)
    return net


def wallace_multiplier(
    width_a: int, width_b: int | None = None, name: str | None = None
) -> Network:
    """Carry-save (Wallace-style) multiplier with a ripple final adder.

    Partial products per column are reduced three-at-a-time through
    full-adder cells until every column holds at most two bits; a ripple
    carry-propagate adder finishes.  Shallower (and busier) than the array
    multiplier — the contrasting architecture for the Table-3 ablation.
    """
    if width_b is None:
        width_b = width_a
    if width_a < 1 or width_b < 1:
        raise NetlistError("multiplier widths must be positive")
    net = Network(name or f"wal{width_a}x{width_b}")
    a = [net.add_input(f"a{i}") for i in range(width_a)]
    b = [net.add_input(f"b{j}") for j in range(width_b)]
    total = width_a + width_b
    columns: list[list[str]] = [[] for _ in range(total)]
    for i in range(width_a):
        for j in range(width_b):
            columns[i + j].append(
                net.add_gate(f"pp{i}_{j}", "AND", [a[i], b[j]], _AND_OR)
            )

    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    # carry-save reduction
    while any(len(col) > 2 for col in columns):
        nxt: list[list[str]] = [[] for _ in range(total)]
        for k, col in enumerate(columns):
            idx = 0
            while len(col) - idx >= 3:
                x, y, z = col[idx], col[idx + 1], col[idx + 2]
                idx += 3
                p = net.add_gate(fresh("wp"), "XOR", [x, y], _XOR_MUX)
                s = net.add_gate(fresh("ws"), "XOR", [p, z], _XOR_MUX)
                g = net.add_gate(fresh("wg"), "AND", [x, y], _AND_OR)
                t = net.add_gate(fresh("wt"), "AND", [p, z], _AND_OR)
                c = net.add_gate(fresh("wc"), "OR", [g, t], _AND_OR)
                nxt[k].append(s)
                if k + 1 < total:
                    nxt[k + 1].append(c)
            if len(col) - idx == 2:
                x, y = col[idx], col[idx + 1]
                s = net.add_gate(fresh("hs"), "XOR", [x, y], _XOR_MUX)
                c = net.add_gate(fresh("hc"), "AND", [x, y], _AND_OR)
                nxt[k].append(s)
                if k + 1 < total:
                    nxt[k + 1].append(c)
            elif len(col) - idx == 1:
                nxt[k].append(col[idx])
        columns = nxt

    # final carry-propagate (ripple) adder over the two remaining rows
    outputs: list[str] = []
    carry: str | None = None
    for k, col in enumerate(columns):
        operands = list(col)
        if carry is not None:
            operands.append(carry)
        if not operands:
            bit = net.add_gate(fresh("z"), "CONST0", (), 0.0)
            carry = None
        elif len(operands) == 1:
            bit = operands[0]
            carry = None
        elif len(operands) == 2:
            x, y = operands
            bit = net.add_gate(fresh("fs"), "XOR", [x, y], _XOR_MUX)
            carry = net.add_gate(fresh("fc"), "AND", [x, y], _AND_OR)
        else:
            x, y, z = operands
            p = net.add_gate(fresh("cp"), "XOR", [x, y], _XOR_MUX)
            bit = net.add_gate(fresh("cs"), "XOR", [p, z], _XOR_MUX)
            g = net.add_gate(fresh("cg"), "AND", [x, y], _AND_OR)
            t = net.add_gate(fresh("ct"), "AND", [p, z], _AND_OR)
            carry = net.add_gate(fresh("cc"), "OR", [g, t], _AND_OR)
        outputs.append(net.add_gate(f"p{k}", "BUF", [bit], 0.0))
    net.set_outputs(outputs)
    return net
