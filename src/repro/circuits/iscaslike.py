"""The Table-2 circuit suite.

The paper runs Table 2 on six ISCAS-85 circuits.  The original netlists are
not shipped in this offline environment, so the suite substitutes circuits
of comparable flavour (see DESIGN.md):

* ``c17`` — the real (public, 6-gate) ISCAS-85 circuit, embedded below;
* ``alu4`` — a 4-bit function-select ALU (mux-heavy, like c880/c5315
  control logic);
* ``cla8`` — an 8-bit carry-lookahead adder (reconvergent g/p logic,
  c432 arbitration flavour);
* ``cmp8`` — an 8-bit ripple comparator;
* ``par16`` — a 16-input parity tree (c499/c1355 XOR flavour);
* ``rnd1`` / ``rnd2`` — seeded random reconvergent logic.

Each is analyzed after :func:`repro.circuits.partition.cascade_bipartition`
splits it into a two-module cascade, exactly as the paper constructs its
hierarchical versions of the ISCAS circuits.
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.random_logic import random_network
from repro.circuits.trees import (
    carry_lookahead_adder,
    comparator,
    parity_tree,
)
from repro.errors import NetlistError
from repro.netlist.network import Network
from repro.parsers.bench import loads_bench

#: The genuine ISCAS-85 c17 netlist (public domain, 6 NAND gates).
C17_BENCH = """\
# c17 — smallest ISCAS-85 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Network:
    """The real ISCAS-85 c17 (unit gate delays)."""
    return loads_bench(C17_BENCH, name="c17")


def alu(width: int = 4, name: str | None = None) -> Network:
    """Function-select ALU: op selects among AND/OR/XOR/ADD per bit.

    Two select lines drive per-bit mux trees over the four operations; the
    ADD result rides a ripple-carry chain, so for non-ADD opcodes the whole
    chain is a (mux-guarded) false path — exactly the structure that
    separates functional from topological analysis.
    """
    if width < 1:
        raise NetlistError("alu needs width >= 1")
    net = Network(name or f"alu{width}")
    s0 = net.add_input("op0")
    s1 = net.add_input("op1")
    cin = net.add_input("c_in")
    a = [net.add_input(f"a{i}") for i in range(width)]
    b = [net.add_input(f"b{i}") for i in range(width)]
    carry = cin
    for i in range(width):
        land = net.add_gate(f"and{i}", "AND", [a[i], b[i]], 1.0)
        lor = net.add_gate(f"or{i}", "OR", [a[i], b[i]], 1.0)
        lxor = net.add_gate(f"xor{i}", "XOR", [a[i], b[i]], 2.0)
        # ripple adder stage
        t = net.add_gate(f"t{i}", "AND", [lxor, carry], 1.0)
        lsum = net.add_gate(f"sum{i}", "XOR", [lxor, carry], 2.0)
        carry = net.add_gate(f"c{i + 1}", "OR", [land, t], 1.0)
        # operation select: op1 chooses (arith vs logic), op0 the flavour
        logic = net.add_gate(f"lmux{i}", "MUX", [s0, land, lor], 2.0)
        arith = net.add_gate(f"amux{i}", "MUX", [s0, lxor, lsum], 2.0)
        net.add_gate(f"y{i}", "MUX", [s1, logic, arith], 2.0)
    net.add_gate("c_out", "AND", [s1, s0, carry], 1.0)
    net.set_outputs([f"y{i}" for i in range(width)] + ["c_out"])
    return net


def shared_select_chain(chain: int = 6, name: str = "gfp") -> Network:
    """A circuit with a *global* false path through two MUXes sharing a
    select.

    The inner MUX passes the long chain only when ``s = 0``; the outer MUX
    passes the inner result only when ``s = 1`` — the chain→output path is
    false, but proving it requires seeing both MUXes at once.  Cutting
    between them (the ``load``-heavy bipartition used by the Table-2 bench)
    makes hierarchical analysis overestimate: the paper's "global false
    paths that are false due to the interaction of various leaf modules
    are overlooked".
    """
    net = Network(name)
    s = net.add_input("s")
    a = net.add_input("a")
    b = net.add_input("b")
    c = net.add_input("c")
    sig = a
    for i in range(chain):
        sig = net.add_gate(
            f"ch{i}", "AND" if i % 2 else "OR", [sig, b], 1.0
        )
    inner = net.add_gate("inner", "MUX", [s, sig, b], 1.0)
    net.add_gate("outer", "MUX", [s, c, inner], 1.0)
    net.set_outputs(["outer"])
    return net


#: Name → generator for the Table-2 suite.
SUITE: dict[str, Callable[[], Network]] = {
    "c17": c17,
    "alu4": lambda: alu(4, name="alu4"),
    "cla8": lambda: carry_lookahead_adder(8, name="cla8"),
    "cmp8": lambda: comparator(8, name="cmp8"),
    "par16": lambda: parity_tree(16, name="par16"),
    "rnd1": lambda: random_network(12, 60, seed=7, num_outputs=4, name="rnd1"),
    "rnd2": lambda: random_network(14, 90, seed=23, num_outputs=5, name="rnd2"),
}


def _csaflat8() -> Network:
    from repro.circuits.adders import cascade_adder

    return cascade_adder(8, 2).flatten(name="csaflat8")


#: Table-2 experiment rows: (circuit factory, bipartition cut fraction).
#: The cut fraction controls where the cascade cut lands; ``gfp`` and
#: ``csaflat8`` are deliberately cut so that some falsity becomes global,
#: reproducing the paper's observed "small overestimation on some circuits".
TABLE2_ROWS: dict[str, tuple[Callable[[], Network], float]] = {
    "c17": (c17, 0.5),
    "alu4": (SUITE["alu4"], 0.5),
    "cla8": (SUITE["cla8"], 0.5),
    "cmp8": (SUITE["cmp8"], 0.5),
    "rnd2": (SUITE["rnd2"], 0.5),
    "gfp": (lambda: shared_select_chain(6), 0.85),
    "csaflat8": (_csaflat8, 0.5),
}


def table2_circuits() -> dict[str, Network]:
    """Instantiate the whole suite."""
    return {name: make() for name, make in SUITE.items()}
