"""Adder generators, including the paper's carry-skip structures.

:func:`carry_skip_block` reproduces Figure 1 of the paper (an m-bit ripple
carry chain plus a skip multiplexer whose select is the AND of all propagate
signals), with the Section 4 delay assignment: AND/OR gates delay 1,
XOR/MUX gates delay 2.  :func:`cascade_adder` chains ``n/m`` such blocks
into the ``csa n.m`` circuits of Table 1 as a depth-1 :class:`HierDesign`
(Figure 2 shows the 4-bit instance).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network

#: Delay of AND/OR gates in the paper's example.
AND_OR_DELAY = 1.0
#: Delay of XOR/MUX gates in the paper's example.
XOR_MUX_DELAY = 2.0


def full_adder(name: str = "fa") -> Network:
    """One full adder: inputs a, b, cin; outputs sum, cout (no skip)."""
    net = Network(name)
    a, b, cin = net.add_inputs(["a", "b", "cin"])
    p = net.add_gate("p", "XOR", [a, b], XOR_MUX_DELAY)
    g = net.add_gate("g", "AND", [a, b], AND_OR_DELAY)
    net.add_gate("sum", "XOR", [p, cin], XOR_MUX_DELAY)
    t = net.add_gate("t", "AND", [p, cin], AND_OR_DELAY)
    net.add_gate("cout", "OR", [g, t], AND_OR_DELAY)
    net.set_outputs(["sum", "cout"])
    return net


def ripple_adder(bits: int, name: str | None = None) -> Network:
    """``bits``-bit ripple-carry adder (flat, no skip logic)."""
    if bits < 1:
        raise NetlistError("ripple_adder needs at least 1 bit")
    net = Network(name or f"rca{bits}")
    cin = net.add_input("c_in")
    a = [net.add_input(f"a{i}") for i in range(bits)]
    b = [net.add_input(f"b{i}") for i in range(bits)]
    carry = cin
    for i in range(bits):
        p = net.add_gate(f"p{i}", "XOR", [a[i], b[i]], XOR_MUX_DELAY)
        g = net.add_gate(f"g{i}", "AND", [a[i], b[i]], AND_OR_DELAY)
        net.add_gate(f"s{i}", "XOR", [p, carry], XOR_MUX_DELAY)
        t = net.add_gate(f"t{i}", "AND", [p, carry], AND_OR_DELAY)
        carry = net.add_gate(f"c{i + 1}", "OR", [g, t], AND_OR_DELAY)
    net.set_outputs([f"s{i}" for i in range(bits)] + [carry])
    return net


def carry_skip_block(bits: int = 2, name: str | None = None) -> Network:
    """An m-bit carry-skip adder block (Figure 1 for ``bits=2``).

    Inputs (in the paper's order): ``c_in, a0, b0, ..., a{m-1}, b{m-1}``.
    Outputs: ``s0..s{m-1}, c_out``.  The ripple carry ``c_m`` feeds a MUX
    that *skips* ``c_in`` straight to ``c_out`` when every stage propagates
    — this creates the classic false path through the ripple chain.
    """
    if bits < 1:
        raise NetlistError("carry_skip_block needs at least 1 bit")
    net = Network(name or f"csa_block{bits}")
    cin = net.add_input("c_in")
    pins: list[str] = []
    for i in range(bits):
        pins.append(net.add_input(f"a{i}"))
        pins.append(net.add_input(f"b{i}"))
    carry = cin
    propagates: list[str] = []
    for i in range(bits):
        a, b = f"a{i}", f"b{i}"
        p = net.add_gate(f"p{i}", "XOR", [a, b], XOR_MUX_DELAY)
        propagates.append(p)
        g = net.add_gate(f"g{i}", "AND", [a, b], AND_OR_DELAY)
        net.add_gate(f"s{i}", "XOR", [p, carry], XOR_MUX_DELAY)
        t = net.add_gate(f"t{i}", "AND", [p, carry], AND_OR_DELAY)
        carry = net.add_gate(f"c{i + 1}", "OR", [g, t], AND_OR_DELAY)
    skip = net.add_gate("skip", "AND", propagates, AND_OR_DELAY)
    # MUX(select, d0, d1): c_out = c_in when all stages propagate.
    net.add_gate("c_out", "MUX", [skip, carry, cin], XOR_MUX_DELAY)
    net.set_outputs([f"s{i}" for i in range(bits)] + ["c_out"])
    return net


def block_input_order(bits: int) -> list[str]:
    """Port order used by :func:`carry_skip_block`."""
    order = ["c_in"]
    for i in range(bits):
        order.extend([f"a{i}", f"b{i}"])
    return order


def cascade_adder(
    total_bits: int, block_bits: int, name: str | None = None
) -> HierDesign:
    """``csa total_bits.block_bits``: cascade of carry-skip blocks (Fig. 2).

    The design has ``total_bits // block_bits`` instances of the same leaf
    module, with ``c_out`` of each block driving ``c_in`` of the next —
    exactly the Table 1 circuits.
    """
    if total_bits % block_bits != 0:
        raise NetlistError(
            f"total_bits={total_bits} not divisible by block_bits={block_bits}"
        )
    blocks = total_bits // block_bits
    if blocks < 1:
        raise NetlistError("cascade_adder needs at least one block")
    design = HierDesign(name or f"csa{total_bits}.{block_bits}")
    module = Module(f"csa_block{block_bits}", carry_skip_block(block_bits))
    design.add_module(module)
    design.add_input("c_in")
    for i in range(total_bits):
        design.add_input(f"a{i}")
        design.add_input(f"b{i}")
    outputs: list[str] = []
    carry = "c_in"
    for blk in range(blocks):
        conns = {"c_in": carry}
        for i in range(block_bits):
            bit = blk * block_bits + i
            conns[f"a{i}"] = f"a{bit}"
            conns[f"b{i}"] = f"b{bit}"
            conns[f"s{i}"] = f"s{bit}"
            outputs.append(f"s{bit}")
        carry_net = f"c{(blk + 1) * block_bits}"
        conns["c_out"] = carry_net
        design.add_instance(f"u{blk}", module.name, conns)
        carry = carry_net
    outputs.append(carry)
    design.set_outputs(outputs)
    design.validate()
    return design


def carry_select_adder(
    total_bits: int, block_bits: int, name: str | None = None
) -> Network:
    """Carry-select adder (flat): each block computed for cin=0 and cin=1.

    A second false-path-rich adder style used by the extension benchmarks.
    """
    if total_bits % block_bits != 0:
        raise NetlistError("total_bits must be divisible by block_bits")
    net = Network(name or f"csel{total_bits}.{block_bits}")
    cin = net.add_input("c_in")
    for i in range(total_bits):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")

    def ripple(prefix: str, blk: int, carry_sig: str | None, const: bool) -> tuple[list[str], str]:
        carry = carry_sig
        sums = []
        for i in range(block_bits):
            bit = blk * block_bits + i
            p = net.add_gate(f"{prefix}p{bit}", "XOR", [f"a{bit}", f"b{bit}"],
                             XOR_MUX_DELAY)
            g = net.add_gate(f"{prefix}g{bit}", "AND", [f"a{bit}", f"b{bit}"],
                             AND_OR_DELAY)
            if carry is None:
                # constant carry-in folded into the first stage
                if const:
                    s = net.add_gate(f"{prefix}s{bit}", "XNOR", [p],
                                     XOR_MUX_DELAY)
                    carry_next = net.add_gate(
                        f"{prefix}c{bit + 1}", "OR", [g, p], AND_OR_DELAY
                    )
                else:
                    s = net.add_gate(f"{prefix}s{bit}", "BUF", [p], 0.0)
                    carry_next = net.add_gate(
                        f"{prefix}c{bit + 1}", "BUF", [g], 0.0
                    )
            else:
                s = net.add_gate(f"{prefix}s{bit}", "XOR", [p, carry],
                                 XOR_MUX_DELAY)
                t = net.add_gate(f"{prefix}t{bit}", "AND", [p, carry],
                                 AND_OR_DELAY)
                carry_next = net.add_gate(
                    f"{prefix}c{bit + 1}", "OR", [g, t], AND_OR_DELAY
                )
            sums.append(s)
            carry = carry_next
        return sums, carry

    outputs: list[str] = []
    carry: str = cin
    for blk in range(total_bits // block_bits):
        if blk == 0:
            # No select stage for the first block; its sums are the final
            # outputs, so they take the canonical s{bit} names directly.
            sums, carry = ripple("", blk, carry, False)
            outputs.extend(sums)
            continue
        sums0, c0 = ripple(f"z{blk}_", blk, None, False)
        sums1, c1 = ripple(f"o{blk}_", blk, None, True)
        for i, (s0, s1) in enumerate(zip(sums0, sums1)):
            bit = blk * block_bits + i
            outputs.append(
                net.add_gate(f"s{bit}", "MUX", [carry, s0, s1], XOR_MUX_DELAY)
            )
        carry = net.add_gate(
            f"c{(blk + 1) * block_bits}", "MUX", [carry, c0, c1], XOR_MUX_DELAY
        )
    outputs.append(carry)
    net.set_outputs(outputs)
    return net
