"""Tree- and slice-structured building-block circuits."""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.network import Network


def parity_tree(width: int, name: str | None = None) -> Network:
    """Balanced XOR tree over ``width`` inputs (c499/c1355 flavour)."""
    if width < 1:
        raise NetlistError("parity_tree needs at least 1 input")
    net = Network(name or f"parity{width}")
    frontier = [net.add_input(f"x{i}") for i in range(width)]
    level = 0
    while len(frontier) > 1:
        nxt = []
        for i in range(0, len(frontier) - 1, 2):
            nxt.append(
                net.add_gate(
                    f"p{level}_{i // 2}", "XOR",
                    [frontier[i], frontier[i + 1]], 1.0,
                )
            )
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
        level += 1
    out = frontier[0]
    if net.is_input(out):
        out = net.add_gate("parity", "BUF", [out], 0.0)
    net.set_outputs([out])
    return net


def mux_tree(select_bits: int, name: str | None = None) -> Network:
    """A 2^k:1 multiplexer tree — dense with XBD0-visible false paths."""
    if select_bits < 1:
        raise NetlistError("mux_tree needs at least 1 select bit")
    net = Network(name or f"mux{1 << select_bits}")
    selects = [net.add_input(f"s{i}") for i in range(select_bits)]
    frontier = [net.add_input(f"d{i}") for i in range(1 << select_bits)]
    for level, sel in enumerate(selects):
        nxt = []
        for i in range(0, len(frontier), 2):
            nxt.append(
                net.add_gate(
                    f"m{level}_{i // 2}", "MUX",
                    [sel, frontier[i], frontier[i + 1]], 1.0,
                )
            )
        frontier = nxt
    net.set_outputs([frontier[0]])
    return net


def and_or_tree(depth: int, name: str | None = None) -> Network:
    """Alternating AND/OR complete binary tree of the given depth."""
    if depth < 1:
        raise NetlistError("and_or_tree needs depth >= 1")
    net = Network(name or f"andor{depth}")
    frontier = [net.add_input(f"x{i}") for i in range(1 << depth)]
    for level in range(depth):
        op = "AND" if level % 2 == 0 else "OR"
        nxt = []
        for i in range(0, len(frontier), 2):
            nxt.append(
                net.add_gate(
                    f"t{level}_{i // 2}", op,
                    [frontier[i], frontier[i + 1]], 1.0,
                )
            )
        frontier = nxt
    net.set_outputs([frontier[0]])
    return net


def comparator(width: int, name: str | None = None) -> Network:
    """Ripple magnitude comparator: outputs ``eq`` and ``gt`` (a > b)."""
    if width < 1:
        raise NetlistError("comparator needs width >= 1")
    net = Network(name or f"cmp{width}")
    eq_chain: str | None = None
    gt_chain: str | None = None
    # Most-significant bit first so the ripple runs MSB -> LSB.
    for i in reversed(range(width)):
        a = net.add_input(f"a{i}")
        b = net.add_input(f"b{i}")
        eq_i = net.add_gate(f"eq{i}", "XNOR", [a, b], 1.0)
        nb = net.add_gate(f"nb{i}", "NOT", [b], 1.0)
        gt_i = net.add_gate(f"gtb{i}", "AND", [a, nb], 1.0)
        if eq_chain is None:
            eq_chain = eq_i
            gt_chain = gt_i
        else:
            new_gt = net.add_gate(
                f"gtc{i}", "AND", [eq_chain, gt_i], 1.0
            )
            gt_chain = net.add_gate(
                f"gt{i}", "OR", [gt_chain, new_gt], 1.0
            )
            eq_chain = net.add_gate(
                f"eqc{i}", "AND", [eq_chain, eq_i], 1.0
            )
    net.add_gate("eq", "BUF", [eq_chain], 0.0)
    net.add_gate("gt", "BUF", [gt_chain], 0.0)
    net.set_outputs(["eq", "gt"])
    return net


def priority_encoder(width: int, name: str | None = None) -> Network:
    """Priority encoder: ``valid`` plus one-hot ``y_i`` grant outputs."""
    if width < 1:
        raise NetlistError("priority_encoder needs width >= 1")
    net = Network(name or f"prio{width}")
    reqs = [net.add_input(f"r{i}") for i in range(width)]
    blocked: str | None = None
    grants = []
    for i, r in enumerate(reqs):
        if blocked is None:
            g = net.add_gate(f"y{i}", "BUF", [r], 0.0)
        else:
            nb = net.add_gate(f"nb{i}", "NOT", [blocked], 1.0)
            g = net.add_gate(f"y{i}", "AND", [r, nb], 1.0)
        grants.append(g)
        if blocked is None:
            blocked = r
        else:
            blocked = net.add_gate(f"blk{i}", "OR", [blocked, r], 1.0)
    valid = net.add_gate("valid", "BUF", [blocked], 0.0)
    net.set_outputs(grants + [valid])
    return net


def carry_lookahead_adder(width: int, name: str | None = None) -> Network:
    """Single-level carry-lookahead adder (reconvergent g/p logic)."""
    if width < 1:
        raise NetlistError("carry_lookahead_adder needs width >= 1")
    net = Network(name or f"cla{width}")
    cin = net.add_input("c_in")
    gs, ps = [], []
    for i in range(width):
        a = net.add_input(f"a{i}")
        b = net.add_input(f"b{i}")
        gs.append(net.add_gate(f"g{i}", "AND", [a, b], 1.0))
        ps.append(net.add_gate(f"p{i}", "XOR", [a, b], 1.0))
    carries = [cin]
    for i in range(width):
        # c_{i+1} = g_i + p_i·g_{i-1} + ... + p_i···p_0·c_in
        terms = [gs[i]]
        for j in range(i - 1, -1, -1):
            prefix = ps[j + 1: i + 1] + [gs[j]]
            terms.append(
                net.add_gate(f"t{i}_{j}", "AND", prefix, 1.0)
            )
        full_prefix = ps[: i + 1] + [cin]
        terms.append(net.add_gate(f"t{i}_c", "AND", full_prefix, 1.0))
        carries.append(net.add_gate(f"c{i + 1}", "OR", terms, 1.0))
    sums = [
        net.add_gate(f"s{i}", "XOR", [ps[i], carries[i]], 1.0)
        for i in range(width)
    ]
    net.set_outputs(sums + [carries[width]])
    return net
