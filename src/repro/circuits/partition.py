"""Partitioning flat circuits into hierarchical cascades.

The paper constructs its Table-2 hierarchy by hand: "A benchmark circuit
was partitioned into two circuits in a cascade structure so that one
circuit drives the other."  :func:`cascade_bipartition` automates that cut
by topological level: gates at or below the cut level form the driver
module, the rest the load module, and every signal crossing the cut becomes
a port/net of the depth-1 hierarchy.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.netlist.ops import levelize


def subnetwork(
    network: Network,
    gate_names: set[str],
    outputs: list[str],
    name: str,
) -> Network:
    """Extract the gates in ``gate_names`` as a standalone network.

    Any signal referenced but not produced inside the subset becomes a
    primary input (PIs of the parent and foreign gate outputs alike).
    """
    sub = Network(name)
    external: list[str] = []
    seen_external: set[str] = set()
    for s in network.topological_order():
        if s in gate_names:
            for f in network.gate(s).fanins:
                if f not in gate_names and f not in seen_external:
                    seen_external.add(f)
                    external.append(f)
    for x in external:
        sub.add_input(x)
    for s in network.topological_order():
        if s in gate_names:
            g = network.gate(s)
            sub.add_gate(g.name, g.gtype, g.fanins, g.delay)
    for o in outputs:
        if not sub.has_signal(o):
            raise NetlistError(f"subnetwork output {o!r} not produced")
    sub.set_outputs(outputs)
    return sub


def cascade_bipartition(
    network: Network,
    cut_fraction: float = 0.5,
    name: str | None = None,
) -> HierDesign:
    """Split a flat circuit into a two-module cascade ``driver → load``.

    ``cut_fraction`` positions the cut within the level range (0.5 =
    median depth).  Primary outputs produced by the driver half stay
    driver outputs; everything crossing the cut becomes a top-level net.
    """
    if not 0.0 < cut_fraction < 1.0:
        raise NetlistError("cut_fraction must be in (0, 1)")
    if network.num_gates() < 2:
        raise NetlistError("cannot bipartition a circuit with < 2 gates")
    levels = levelize(network)
    gate_levels = sorted(
        levels[s] for s in network.gates
    )
    cut_level = gate_levels[
        min(len(gate_levels) - 1, int(len(gate_levels) * cut_fraction))
    ]
    if cut_level >= gate_levels[-1]:
        # Keep at least one gate on the load side.
        below = [l for l in gate_levels if l < gate_levels[-1]]
        if not below:
            raise NetlistError("all gates share one level; cannot cut")
        cut_level = below[-1]
    driver_gates = {
        s for s in network.gates if levels[s] <= cut_level
    }
    load_gates = set(network.gates) - driver_gates
    if not driver_gates or not load_gates:
        raise NetlistError(
            "degenerate cut: adjust cut_fraction for this circuit"
        )
    # Signals exported by the driver: feed a load gate, or are POs.
    exported: list[str] = []
    for s in network.topological_order():
        if s not in driver_gates:
            continue
        feeds_load = any(f in load_gates for f in network.fanouts(s))
        is_po = s in network.outputs
        if feeds_load or is_po:
            exported.append(s)
    load_outputs = [o for o in network.outputs if o in load_gates]
    driver = subnetwork(
        network, driver_gates, exported, f"{network.name}_driver"
    )
    load = subnetwork(
        network, load_gates, load_outputs, f"{network.name}_load"
    )
    design = HierDesign(name or f"{network.name}_cascade")
    design.add_module(Module(driver.name, driver))
    design.add_module(Module(load.name, load))
    for x in network.inputs:
        design.add_input(x)
    design.add_instance(
        "u_driver", driver.name, {p: p for p in (*driver.inputs, *driver.outputs)}
    )
    design.add_instance(
        "u_load", load.name, {p: p for p in (*load.inputs, *load.outputs)}
    )
    design.set_outputs(list(network.outputs))
    design.validate()
    return design


def group_cascade(
    design: HierDesign, num_groups: int, name: str | None = None
) -> HierDesign:
    """Re-chunk a single-chain cascade into ``num_groups`` super-modules.

    Instances (in topological order) are split into contiguous groups;
    each group is flattened into one new leaf module.  Used to build the
    coarser hierarchies of the Table-1 ablation (``csa n.m`` with larger
    effective blocks) and the boundary-falsity experiment: skip paths
    crossing a group boundary become global and are no longer detected.
    """
    order = design.instance_order()
    if num_groups < 1 or num_groups > len(order):
        raise NetlistError(
            f"num_groups={num_groups} out of range for {len(order)} instances"
        )
    grouped = HierDesign(name or f"{design.name}_g{num_groups}")
    for x in design.inputs:
        grouped.add_input(x)
    chunk = (len(order) + num_groups - 1) // num_groups
    for gidx in range(num_groups):
        members = order[gidx * chunk: (gidx + 1) * chunk]
        if not members:
            continue
        # Build a sub-design holding just these instances, then flatten it.
        sub = HierDesign(f"{design.name}_grp{gidx}")
        member_set = set(members)
        produced: set[str] = set()
        consumed: set[str] = set()
        for inst_name in members:
            inst = design.instances[inst_name]
            module = design.module_of(inst)
            if module.name not in sub.modules:
                sub.add_module(module)
            for port in module.inputs:
                consumed.add(inst.net_of(port))
            for port in module.outputs:
                produced.add(inst.net_of(port))
        group_inputs = sorted(
            net
            for net in consumed
            if net not in produced
        )
        # Outputs: produced nets consumed outside the group or top outputs.
        outside_consumed: set[str] = set()
        for other_name, other in design.instances.items():
            if other_name in member_set:
                continue
            other_module = design.module_of(other)
            for port in other_module.inputs:
                outside_consumed.add(other.net_of(port))
        group_outputs = sorted(
            net
            for net in produced
            if net in outside_consumed or net in design.outputs
        )
        for net in group_inputs:
            sub.add_input(net)
        for inst_name in members:
            inst = design.instances[inst_name]
            sub.add_instance(inst.name, inst.module_name, inst.connections)
        sub.set_outputs(group_outputs)
        flat = sub.flatten(name=f"{design.name}_grp{gidx}")
        grouped.add_module(Module(flat.name, flat))
        grouped.add_instance(
            f"g{gidx}",
            flat.name,
            {p: p for p in (*flat.inputs, *flat.outputs)},
        )
    grouped.set_outputs(list(design.outputs))
    grouped.validate()
    return grouped
