"""Setup shim for environments whose pip cannot build PEP 517 editable wheels
offline (no `wheel` package).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
