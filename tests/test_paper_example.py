"""End-to-end reproduction of every number in the paper's Section 4.

This is the canonical "does the reproduction reproduce" test module: each
test states the paper's claim and checks our pipeline against it.
"""

import pytest

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.core.demand import DemandDrivenAnalyzer, flat_functional_delay
from repro.core.hier import HierarchicalAnalyzer
from repro.core.required import characterize_network
from repro.core.xbd0 import functional_delays
from repro.sta.topological import arrival_times, pin_to_pin_delay


@pytest.fixture(scope="module")
def models():
    return characterize_network(carry_skip_block(2))


class TestSection31Models:
    """T_s0 = {(2,4,4,-inf,-inf)}, T_s1 = {(4,6,6,4,4)}, T_cout = {(2,8,8,6,6)}."""

    def test_t_s0(self, models):
        assert models["s0"].tuples == (
            (2.0, 4.0, 4.0, float("-inf"), float("-inf")),
        )

    def test_t_s1(self, models):
        assert models["s1"].tuples == ((4.0, 6.0, 6.0, 4.0, 4.0),)

    def test_t_cout(self, models):
        assert models["c_out"].tuples == ((2.0, 8.0, 8.0, 6.0, 6.0),)

    def test_s_models_match_topological(self, models, csa_block2):
        """Paper: "The timing models for s0 and s1 are exactly the same as
        those under topological analysis."""
        for out in ("s0", "s1"):
            for x, d in zip(models[out].inputs, models[out].tuples[0]):
                assert d == pin_to_pin_delay(csa_block2, x, out)

    def test_cout_beats_topological_on_cin(self, models, csa_block2):
        """Paper: "the delay from c_in to c_out is 2 in T_cout while the
        longest topological path is of length 6."""
        assert pin_to_pin_delay(csa_block2, "c_in", "c_out") == 6.0
        assert models["c_out"].delay_from("c_in") == 2.0


class TestSection4Cascade:
    """The 4-bit adder of Figure 2 (two cascaded 2-bit blocks)."""

    def test_tmp_arrival_is_8(self, csa4_design):
        result = HierarchicalAnalyzer(csa4_design).analyze()
        assert result.net_times["c2"] == 8.0

    def test_c4_arrival_is_10(self, csa4_design):
        result = HierarchicalAnalyzer(csa4_design).analyze()
        assert result.output_times["c4"] == 10.0

    def test_matches_flat_analysis(self, csa4_design):
        """Paper: "which matches the result of flat analysis"."""
        hier = HierarchicalAnalyzer(csa4_design).analyze()
        _, flat_times, _ = flat_functional_delay(csa4_design)
        assert hier.output_times["c4"] == flat_times["c4"]

    def test_other_outputs_equal_topological(self, csa4_design):
        """Paper: "The arrival times for all the other primary outputs are
        the same as their topological delays."""
        hier = HierarchicalAnalyzer(csa4_design).analyze()
        flat = csa4_design.flatten()
        at = arrival_times(flat)
        for out in ("s0", "s1", "s2", "s3"):
            assert hier.output_times[out] == at[out]

    @pytest.mark.parametrize("blocks", [1, 2, 3, 4, 6, 8])
    def test_closed_form_2n_plus_6(self, blocks):
        """Paper: delay of the last carry of n cascaded 2-bit adders is
        2n + 6 (verified against flat analysis at least up to n = 8)."""
        design = cascade_adder(2 * blocks, 2)
        hier = HierarchicalAnalyzer(design).analyze()
        assert hier.output_times[f"c{2 * blocks}"] == 2 * blocks + 6

    @pytest.mark.parametrize("blocks", [2, 4, 8])
    def test_closed_form_matches_flat(self, blocks):
        design = cascade_adder(2 * blocks, 2)
        flat = design.flatten()
        got = functional_delays(flat, outputs=(f"c{2 * blocks}",))
        assert got[f"c{2 * blocks}"] == 2 * blocks + 6


class TestFigure5:
    """arr(c_in)=5, others 0: c_out at 8; slack(c_in) = +1 vs topo -3."""

    def test_cout_under_fig5_arrivals(self, csa_block2):
        got = functional_delays(csa_block2, {"c_in": 5.0})
        assert got["c_out"] == 8.0

    def test_functional_slack_plus_one(self, models):
        assert models["c_out"].input_slack({"c_in": 5.0}, "c_in") == 1.0

    def test_topological_slack_minus_three(self, csa_block2):
        # required 8 at c_out, topological path from c_in is 6:
        # required(c_in) = 2, arrival 5 -> slack -3
        longest = pin_to_pin_delay(csa_block2, "c_in", "c_out")
        assert (8.0 - longest) - 5.0 == -3.0

    def test_delaying_cin_by_one_is_free(self, csa_block2):
        for arr, want in ((5.0, 8.0), (6.0, 8.0), (7.0, 9.0)):
            got = functional_delays(csa_block2, {"c_in": arr})
            assert got["c_out"] == want


class TestSaldanhaArrivalCase:
    """[7] analyzes the block under arr(c_in)=5, others 0: delay 8 with
    a0/b0 critical (0 + 8)."""

    def test_demand_driven_agrees(self):
        design = cascade_adder(2, 2)
        analyzer = DemandDrivenAnalyzer(design)
        result = analyzer.analyze({"c_in": 5.0})
        assert result.output_times["c2"] == 8.0
