"""Tests for the batch analysis API surface and the CLI batch mode.

Covers :class:`~repro.api.AnalysisOptions` validation of the new
``exec_engine``/``batch_size`` keywords, the session-level
``compile()``/``analyze_batch()`` methods, :class:`BatchResult`
ergonomics, the normalized legacy entry points, and the ``demand`` /
``hier-report --scenarios`` command-line paths including the one-line
``error:`` + exit-2 convention for malformed scenario files.
"""

import json

import pytest

from repro.api import AnalysisOptions, AnalysisSession
from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.cli import load_scenarios, main
from repro.core.batch import BatchResult, ScenarioResult
from repro.core.conditional import ConditionalAnalyzer
from repro.core.result import AnalysisResult
from repro.core.subflat import SubcircuitFlatAnalyzer
from repro.errors import AnalysisError, ReproError
from repro.kernel import CompiledDesign
from repro.parsers.verilog import dumps_verilog
from repro.scenarios import ScenarioSet

POS_INF = float("inf")


@pytest.fixture(scope="module")
def design():
    d = cascade_adder(8, 2)
    d.name = "csa8_2"
    return d


class TestOptions:
    def test_defaults(self):
        opts = AnalysisOptions()
        assert opts.exec_engine == "auto"
        assert opts.batch_size == 256

    def test_unknown_exec_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown exec_engine"):
            AnalysisOptions(exec_engine="vectorized")

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            AnalysisOptions(batch_size=0)

    def test_auto_resolution(self):
        opts = AnalysisOptions()
        assert opts.resolve_exec_engine(1) == "interpreted"
        assert opts.resolve_exec_engine(2) == "compiled"

    def test_explicit_engine_wins(self):
        assert (
            AnalysisOptions(exec_engine="compiled").resolve_exec_engine(1)
            == "compiled"
        )
        assert (
            AnalysisOptions(exec_engine="interpreted").resolve_exec_engine(9)
            == "interpreted"
        )


class TestSession:
    def test_compile_returns_handle(self, design):
        session = AnalysisSession(design)
        compiled = session.compile()
        assert isinstance(compiled, CompiledDesign)
        assert compiled.inputs == design.inputs
        # The handle is cached on the session's analyzer.
        assert session.compile() is compiled

    def test_compile_propagate_matches_analysis(self, design):
        session = AnalysisSession(design)
        arrival = {"c_in": 2.0}
        times = session.compile().propagate([arrival])[0]
        assert times == session.hierarchical(arrival).net_times

    def test_analyze_batch_hierarchical(self, design):
        session = AnalysisSession(design)
        scenarios = [{}, {"a7": 20.0}]
        batch = session.analyze_batch(ScenarioSet.of(*scenarios))
        assert isinstance(batch, BatchResult)
        assert len(batch) == 2
        assert batch.method == "hierarchical"
        assert batch.exec_engine == "compiled"
        assert batch.delay == max(batch.delays)
        assert batch.worst_scenario() == 1
        singles = [session.hierarchical(s) for s in scenarios]
        for scenario, single in zip(batch, singles):
            assert isinstance(scenario, ScenarioResult)
            assert scenario.net_times == single.net_times
            assert min(scenario.slacks.values()) == 0.0

    def test_analyze_batch_demand(self, design):
        session = AnalysisSession(design)
        batch = session.analyze_batch(
            ScenarioSet.of({}, {"c_in": 3.0}), method="demand"
        )
        assert batch.method == "demand"
        assert len(batch) == 2
        assert batch.stats["refinements"] >= 1
        single = session.demand_driven()
        assert batch[0].net_times == single.net_times

    def test_analyze_batch_unknown_method(self, design):
        with pytest.raises(AnalysisError, match="unknown batch method"):
            AnalysisSession(design).analyze_batch(
                ScenarioSet.of({}), method="exact"
            )

    def test_batch_result_json_round_trip(self, design):
        batch = AnalysisSession(design).analyze_batch(ScenarioSet.of({}))
        snapshot = json.loads(json.dumps(batch.to_dict()))
        assert snapshot["kind"] == "BatchResult"
        assert snapshot["method"] == "hierarchical"
        assert len(snapshot["scenarios"]) == 1

    def test_bare_list_removed(self, design):
        session = AnalysisSession(design)
        with pytest.raises(AnalysisError, match="ScenarioSet"):
            session.analyze_batch([])
        with pytest.raises(AnalysisError, match="ScenarioSet.of"):
            session.analyze_batch([{}, {"c_in": 1.0}])

    def test_interpreted_engine_forced(self, design):
        session = AnalysisSession(
            design, options=AnalysisOptions(exec_engine="interpreted")
        )
        batch = session.analyze_batch(ScenarioSet.of({}, {"c_in": 1.0}))
        assert batch.exec_engine == "interpreted"


class TestNormalizedLegacyAnalyzers:
    """PR-2 protocol conformance for the remaining entry points."""

    def test_conditional_accepts_options(self, design):
        opts = AnalysisOptions()
        analyzer = ConditionalAnalyzer(design, options=opts)
        assert analyzer.options is opts
        vector = {x: False for x in design.inputs}
        result = analyzer.analyze(vector)
        assert isinstance(result, AnalysisResult)
        assert result.elapsed_seconds >= 0.0
        assert result.to_dict()["kind"] == "ConditionalResult"

    def test_subflat_accepts_options(self, design):
        analyzer = SubcircuitFlatAnalyzer(design, options=AnalysisOptions())
        result = analyzer.analyze()
        assert isinstance(result, AnalysisResult)
        assert result.arrival_times == result.output_times


class TestLoadScenarios:
    def _write(self, tmp_path, payload):
        f = tmp_path / "scen.json"
        f.write_text(payload if isinstance(payload, str) else
                     json.dumps(payload))
        return str(f)

    def test_objects_and_lists(self, tmp_path):
        path = self._write(tmp_path, [{"a": 1.5}, [2.0, 3.0]])
        assert load_scenarios(path, ["a", "b"]) == [
            {"a": 1.5},
            {"a": 2.0, "b": 3.0},
        ]

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("{oops", "not valid JSON"),
            ({"a": 1}, "expected a JSON list"),
            ([], "scenario list is empty"),
            ([{"zz": 1.0}], "unknown input"),
            ([[1.0]], "has 1 values for 2 inputs"),
            ([3.5], "must be an object"),
            ([{"a": "fast"}], "non-numeric"),
        ],
    )
    def test_malformed(self, tmp_path, payload, match):
        path = self._write(tmp_path, payload)
        with pytest.raises(ReproError, match=match):
            load_scenarios(path, ["a", "b"])


class TestCLI:
    @pytest.fixture()
    def verilog_file(self, tmp_path, design):
        f = tmp_path / "csa8_2.v"
        f.write_text(dumps_verilog(design))
        return str(f)

    @pytest.fixture()
    def scenario_file(self, tmp_path, design):
        f = tmp_path / "scenarios.json"
        f.write_text(json.dumps([{}, {"c_in": 4.0}, {"a0": 2.0}]))
        return str(f)

    def test_demand_single_scenario(self, verilog_file, capsys):
        assert main(["demand", verilog_file]) == 0
        out = capsys.readouterr().out
        assert "Hierarchical timing report" in out
        assert "false-path facts" in out

    def test_demand_engines_agree_on_stdout(self, verilog_file, capsys):
        assert main(
            ["demand", verilog_file, "--exec-engine", "interpreted"]
        ) == 0
        interp = capsys.readouterr().out
        assert main(
            ["demand", verilog_file, "--exec-engine", "compiled"]
        ) == 0
        assert capsys.readouterr().out == interp

    def test_demand_batch(self, verilog_file, scenario_file, capsys):
        assert main(
            ["demand", verilog_file, "--scenarios", scenario_file]
        ) == 0
        out = capsys.readouterr().out
        assert "Batched timing report" in out
        assert "scenarios       : 3" in out
        assert "demand (exec engine compiled)" in out

    def test_hier_report_batch(self, verilog_file, scenario_file, capsys):
        assert main(
            ["hier-report", verilog_file, "--scenarios", scenario_file,
             "--nets"]
        ) == 0
        out = capsys.readouterr().out
        assert "Batched timing report" in out
        assert "hierarchical (exec engine compiled)" in out
        assert "net" in out

    def test_arrival_is_batch_default(self, verilog_file, tmp_path, capsys):
        f = tmp_path / "one.json"
        f.write_text(json.dumps([{}]))
        assert main(
            ["demand", verilog_file, "--scenarios", str(f),
             "--arrival", "c_in=4"]
        ) == 0
        merged = capsys.readouterr().out
        assert main(["demand", verilog_file, "--arrival", "c_in=4"]) == 0
        single = capsys.readouterr().out
        # Same worst output arrival under either spelling.
        assert merged.splitlines()[5].split()[-1] in single

    def test_malformed_scenarios_exit_2(self, verilog_file, tmp_path,
                                        capsys):
        f = tmp_path / "bad.json"
        f.write_text("not json")
        assert main(
            ["demand", verilog_file, "--scenarios", str(f)]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err

    def test_missing_scenario_file_exit_2(self, verilog_file, tmp_path,
                                          capsys):
        missing = str(tmp_path / "nope.json")
        assert main(
            ["hier-report", verilog_file, "--scenarios", missing]
        ) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_demand_rejects_flat_file(self, tmp_path, capsys):
        f = tmp_path / "flat.v"
        f.write_text(dumps_verilog(carry_skip_block(2)))
        assert main(["demand", str(f)]) == 2
        assert "flat module" in capsys.readouterr().err

    def test_bad_exec_engine_rejected(self, verilog_file):
        with pytest.raises(SystemExit):
            main(["demand", verilog_file, "--exec-engine", "turbo"])
