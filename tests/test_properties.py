"""Cross-cutting property tests for the invariants in DESIGN.md §7."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import cascade_adder
from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.required import approx_required_tuples
from repro.core.xbd0 import StabilityAnalyzer
from repro.netlist.ops import networks_equivalent_on
from repro.sat.solver import SolveResult, solve_cnf
from repro.sat.tseitin import miter_cnf
from repro.sim.timed import stable_times
from repro.sim.vectors import random_vectors
from repro.sta.topological import arrival_times


class TestMonotoneSpeedup:
    """XBD0's monotone speedup property (paper footnote 7): making any
    input arrive earlier never worsens the stability of an output."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.data())
    def test_earlier_arrival_never_hurts(self, seed, data):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        out = net.outputs[0]
        base_arrival = {
            x: float(data.draw(st.integers(0, 4))) for x in net.inputs
        }
        sped_up = dict(base_arrival)
        victim = data.draw(st.sampled_from(sorted(net.inputs)))
        sped_up[victim] = base_arrival[victim] - float(
            data.draw(st.integers(1, 3))
        )
        base = StabilityAnalyzer(net, base_arrival).functional_delay(out)
        faster = StabilityAnalyzer(net, sped_up).functional_delay(out)
        assert faster <= base + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.data())
    def test_per_vector_monotone(self, seed, data):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        out = net.outputs[0]
        vec = {x: data.draw(st.booleans()) for x in net.inputs}
        base_arrival = {
            x: float(data.draw(st.integers(0, 4))) for x in net.inputs
        }
        sped_up = {x: t - 1.0 for x, t in base_arrival.items()}
        base = stable_times(net, vec, base_arrival)[out]
        faster = stable_times(net, vec, sped_up)[out]
        assert faster <= base + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_stability_monotone_in_time(self, seed):
        net = random_network(4, 12, seed=seed, num_outputs=1)
        out = net.outputs[0]
        analyzer = StabilityAnalyzer(net)
        topo = arrival_times(net)[out]
        flags = [
            analyzer.stable_at(out, t)
            for t in (topo - 3, topo - 2, topo - 1, topo, topo + 1)
        ]
        assert flags == sorted(flags)
        assert flags[-1] is True  # topological arrival always suffices


class TestFlattening:
    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from([(4, 2), (6, 2), (8, 4), (6, 3)]))
    def test_cascade_flatten_miter_unsat(self, nm):
        """SAT-proved equivalence of hierarchy vs reference ripple sum."""
        n, m = nm
        design = cascade_adder(n, m)
        flat = design.flatten()
        # self-miter against an independent flattening
        again = design.flatten(name="again")
        cnf, _ = miter_cnf(flat, again)
        result, _ = solve_cnf(cnf)
        assert result is SolveResult.UNSAT

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bipartition_flatten_equivalence(self, seed):
        net = random_network(6, 20, seed=seed, num_outputs=2)
        try:
            design = cascade_bipartition(net)
        except Exception:
            return
        assert networks_equivalent_on(
            net, design.flatten(), random_vectors(net.inputs, 24, seed=seed)
        )


class TestRequiredTupleSoundness:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(-4, 4))
    def test_tuples_valid_at_any_required_time(self, seed, required):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        out = net.outputs[0]
        result = approx_required_tuples(net, out, required=float(required))
        cone = net.extract_cone(out)
        for tup in result.tuples:
            arrival = dict(zip(result.inputs, tup))
            analyzer = StabilityAnalyzer(cone, arrival)
            assert analyzer.stable_at(out, float(required))


class TestEngineAgreementOnChecks:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(-2, 8))
    def test_stable_at_same_verdict(self, seed, t):
        net = random_network(5, 12, seed=seed, num_outputs=1)
        out = net.outputs[0]
        verdicts = {
            engine: StabilityAnalyzer(net, engine=engine).stable_at(
                out, float(t)
            )
            for engine in ("sat", "bdd", "brute")
        }
        assert len(set(verdicts.values())) == 1, verdicts
