"""Tests for the stuck-at fault / ATPG substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.faults import (
    StuckAtFault,
    detects,
    enumerate_faults,
    fault_coverage,
    inject_fault,
)
from repro.atpg.generate import (
    generate_test,
    generate_test_set,
    untestable_faults,
)
from repro.circuits.adders import carry_skip_block, ripple_adder
from repro.circuits.random_logic import random_network
from repro.errors import NetlistError
from repro.netlist.network import Network
from repro.sim.vectors import all_vectors, random_vectors


def redundant_circuit() -> Network:
    """z = a + a·b: the AND gate is absorbed, its s-a-0 is untestable."""
    net = Network("red")
    a, b = net.add_inputs(["a", "b"])
    net.add_gate("t", "AND", [a, b], 1.0)
    net.add_gate("z", "OR", [a, "t"], 1.0)
    net.set_outputs(["z"])
    return net


class TestFaultInjection:
    def test_gate_fault(self):
        net = redundant_circuit()
        faulty = inject_fault(net, StuckAtFault("t", True))
        # with t forced to 1, z is constant 1
        for vec in all_vectors(net.inputs):
            assert faulty.output_values(vec)["z"] is True

    def test_input_fault(self):
        net = redundant_circuit()
        faulty = inject_fault(net, StuckAtFault("a", False))
        # a stuck 0: z = 0·b + 0 = 0
        for vec in all_vectors(net.inputs):
            assert list(faulty.output_values(vec).values()) == [False]

    def test_interface_preserved(self):
        net = ripple_adder(2)
        faulty = inject_fault(net, StuckAtFault("p0", True))
        assert faulty.inputs == net.inputs
        assert len(faulty.outputs) == len(net.outputs)

    def test_unknown_signal(self):
        with pytest.raises(NetlistError):
            inject_fault(redundant_circuit(), StuckAtFault("ghost", True))


class TestDetection:
    def test_detects_known_vector(self):
        net = redundant_circuit()
        # t s-a-1 with a=0,b=0: good z=0, faulty z=1
        assert detects(net, StuckAtFault("t", True), {"a": False, "b": False})
        # a=1 masks it
        assert not detects(
            net, StuckAtFault("t", True), {"a": True, "b": True}
        )

    def test_enumerate_faults_count(self):
        net = redundant_circuit()
        assert len(enumerate_faults(net)) == 2 * 4  # a, b, t, z

    def test_fault_coverage(self):
        net = redundant_circuit()
        coverage, missed = fault_coverage(
            net, list(all_vectors(net.inputs))
        )
        # everything testable is covered by exhaustive vectors; only the
        # redundant t s-a-0 (and any equivalent) remain
        assert StuckAtFault("t", False) in missed
        assert coverage == (8 - len(missed)) / 8


class TestGeneration:
    def test_testable_fault_gets_vector(self):
        net = redundant_circuit()
        result = generate_test(net, StuckAtFault("t", True))
        assert result.testable
        assert detects(net, StuckAtFault("t", True), result.vector)

    def test_redundant_fault_proven_untestable(self):
        net = redundant_circuit()
        result = generate_test(net, StuckAtFault("t", False))
        assert not result.testable

    def test_untestable_faults_absorption(self):
        net = redundant_circuit()
        untestable = untestable_faults(net)
        assert StuckAtFault("t", False) in untestable
        # primary signals are all testable
        assert StuckAtFault("a", False) not in untestable
        assert StuckAtFault("z", True) not in untestable

    def test_carry_skip_redundancy_is_the_false_path(self):
        """Saldanha's [7] punchline, rediscovered by the ATPG engine: the
        skip MUX is logically redundant — when every stage propagates, the
        ripple carry equals c_in anyway, so ``skip`` stuck-at-0 changes no
        output.  The redundant fault and the c_in->c_out false path are
        the *same structure*: the MUX exists purely for speed."""
        net = carry_skip_block(2)
        untestable = untestable_faults(net)
        assert untestable == [StuckAtFault("skip", False)]
        # exhaustive confirmation of the redundancy
        faulty = inject_fault(net, StuckAtFault("skip", False))
        for vec in all_vectors(net.inputs):
            assert faulty.output_values(vec) == net.output_values(vec)

    def test_generated_set_covers_everything_testable(self):
        net = ripple_adder(2)
        tests, untestable = generate_test_set(net)
        assert untestable == []
        coverage, missed = fault_coverage(net, tests)
        assert coverage == 1.0
        assert missed == []
        # greedy compaction: far fewer tests than faults
        assert len(tests) < len(enumerate_faults(net))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_generated_vectors_detect_random(self, seed):
        net = random_network(4, 10, seed=seed, num_outputs=2)
        for fault in enumerate_faults(net)[:10]:
            result = generate_test(net, fault)
            if result.testable:
                assert detects(net, fault, result.vector)
            else:
                # exhaustively confirm untestability on small circuits
                assert not any(
                    detects(net, fault, v)
                    for v in all_vectors(net.inputs)
                )
