"""Unit tests for the flat network data structure."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.network import Network


def build_small() -> Network:
    net = Network("small")
    net.add_inputs(["a", "b", "c"])
    net.add_gate("g1", "AND", ["a", "b"], 1.0)
    net.add_gate("g2", "OR", ["g1", "c"], 2.0)
    net.set_outputs(["g2"])
    return net


class TestConstruction:
    def test_duplicate_input_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_input("a")

    def test_gate_shadowing_input_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_gate("a", "NOT", ["a"])

    def test_unknown_fanin_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_gate("g", "AND", ["a", "ghost"])

    def test_negative_delay_rejected(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.add_gate("g", "NOT", ["a"], delay=-1.0)

    def test_empty_name_rejected(self):
        net = Network()
        with pytest.raises(NetlistError):
            net.add_input("")

    def test_string_gate_type_accepted(self):
        net = Network()
        net.add_input("a")
        net.add_gate("g", "not", ["a"])
        assert net.gate("g").gtype is GateType.NOT

    def test_output_must_exist(self):
        net = Network()
        with pytest.raises(NetlistError):
            net.add_output("nope")

    def test_bad_arity_rejected_at_gate_creation(self):
        net = Network()
        net.add_inputs(["a", "b"])
        with pytest.raises(NetlistError):
            net.add_gate("g", "MUX", ["a", "b"])


class TestQueries:
    def test_inputs_outputs_order_preserved(self):
        net = build_small()
        assert net.inputs == ("a", "b", "c")
        assert net.outputs == ("g2",)

    def test_fanins_and_fanouts(self):
        net = build_small()
        assert net.fanins("g2") == ("g1", "c")
        assert net.fanins("a") == ()
        assert net.fanouts("a") == ("g1",)
        assert set(net.fanouts("g1")) == {"g2"}

    def test_gate_lookup_on_input_raises(self):
        net = build_small()
        with pytest.raises(NetlistError):
            net.gate("a")

    def test_support(self):
        net = build_small()
        assert net.support("g1") == ["a", "b"]
        assert net.support("g2") == ["a", "b", "c"]

    def test_num_gates(self):
        assert build_small().num_gates() == 2


class TestTopologicalOrder:
    def test_inputs_before_fanouts(self):
        net = build_small()
        order = net.topological_order()
        assert order.index("a") < order.index("g1")
        assert order.index("g1") < order.index("g2")
        assert len(order) == 5

    def test_diamond(self):
        net = Network()
        net.add_input("x")
        net.add_gate("l", "NOT", ["x"])
        net.add_gate("r", "BUF", ["x"])
        net.add_gate("z", "AND", ["l", "r"])
        order = net.topological_order()
        assert order.index("z") > order.index("l")
        assert order.index("z") > order.index("r")


class TestEvaluate:
    def test_and_or(self):
        net = build_small()
        values = net.evaluate({"a": True, "b": True, "c": False})
        assert values["g1"] is True
        assert values["g2"] is True
        values = net.evaluate({"a": True, "b": False, "c": False})
        assert values["g2"] is False

    def test_missing_input_raises(self):
        net = build_small()
        with pytest.raises(NetlistError):
            net.evaluate({"a": True, "b": True})

    def test_output_values(self):
        net = build_small()
        assert net.output_values({"a": False, "b": False, "c": True}) == {
            "g2": True
        }


class TestTransforms:
    def test_copy_is_independent(self):
        net = build_small()
        cp = net.copy("copy")
        cp.add_gate("extra", "NOT", ["g2"])
        assert not net.has_signal("extra")
        assert cp.name == "copy"
        assert cp.outputs == net.outputs

    def test_with_delays(self):
        net = build_small()
        doubled = net.with_delays(lambda g: g.delay * 2)
        assert doubled.gate("g1").delay == 2.0
        assert doubled.gate("g2").delay == 4.0
        assert net.gate("g1").delay == 1.0

    def test_extract_cone(self):
        net = build_small()
        cone = net.extract_cone("g1")
        assert cone.inputs == ("a", "b")
        assert cone.outputs == ("g1",)
        assert cone.num_gates() == 1
        # cone evaluation matches the parent
        for a in (False, True):
            for b in (False, True):
                parent = net.evaluate({"a": a, "b": b, "c": False})["g1"]
                assert cone.evaluate({"a": a, "b": b})["g1"] is parent

    def test_extract_cone_keeps_pi_order(self):
        net = Network()
        net.add_inputs(["p", "q", "r"])
        net.add_gate("z", "AND", ["r", "p"])
        net.set_outputs(["z"])
        cone = net.extract_cone("z")
        assert cone.inputs == ("p", "r")
