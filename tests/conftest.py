"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.netlist.network import Network


@pytest.fixture(scope="session")
def csa_block2() -> Network:
    """The paper's Figure-1 two-bit carry-skip adder."""
    return carry_skip_block(2)


@pytest.fixture(scope="session")
def csa4_design():
    """Figure 2: the 4-bit cascade of two 2-bit blocks."""
    return cascade_adder(4, 2)


@pytest.fixture()
def and2() -> Network:
    """Minimal AND circuit with unit delay."""
    net = Network("and2")
    net.add_inputs(["x1", "x2"])
    net.add_gate("z", "AND", ["x1", "x2"], 1.0)
    net.set_outputs(["z"])
    return net


def make_false_path_circuit() -> Network:
    """z = MUX(s, a-chain, a) where the chain is the only long path.

    When ``s = 1`` the MUX passes ``a`` directly; when ``s = 0`` it passes
    the chain.  With the consensus term the XBD0 delay is the chain delay,
    but delaying only the chain *relative to required times* exposes
    falsity; used by several analysis tests.
    """
    net = Network("fp")
    s = net.add_input("s")
    a = net.add_input("a")
    sig = a
    for i in range(4):
        sig = net.add_gate(f"b{i}", "BUF", [sig], 1.0)
    net.add_gate("z", "MUX", [s, sig, a], 1.0)
    net.set_outputs(["z"])
    return net


@pytest.fixture()
def false_path_circuit() -> Network:
    return make_false_path_circuit()
