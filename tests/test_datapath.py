"""Tests for the datapath generators (multiplier, barrel shifter)."""

import pytest

from repro.circuits.datapath import array_multiplier, barrel_shifter
from repro.circuits.partition import cascade_bipartition
from repro.core.demand import DemandDrivenAnalyzer, flat_functional_delay
from repro.core.xbd0 import functional_delays
from repro.errors import NetlistError
from repro.sim.vectors import all_vectors, random_vectors
from repro.sta.topological import arrival_times


class TestMultiplier:
    @pytest.mark.parametrize("wa,wb", [(1, 1), (2, 2), (3, 2), (3, 3)])
    def test_multiplies_exhaustively(self, wa, wb):
        net = array_multiplier(wa, wb)
        for vec in all_vectors(net.inputs):
            a = sum((1 << i) for i in range(wa) if vec[f"a{i}"])
            b = sum((1 << j) for j in range(wb) if vec[f"b{j}"])
            values = net.output_values(vec)
            p = sum(
                (1 << k)
                for k in range(wa + wb)
                if values.get(f"p{k}", False)
            )
            assert p == a * b

    def test_multiplies_randomized_4x4(self):
        net = array_multiplier(4, 4)
        for vec in random_vectors(net.inputs, 128, seed=17):
            a = sum((1 << i) for i in range(4) if vec[f"a{i}"])
            b = sum((1 << j) for j in range(4) if vec[f"b{j}"])
            values = net.output_values(vec)
            p = sum((1 << k) for k in range(8) if values[f"p{k}"])
            assert p == a * b

    def test_square_default(self):
        net = array_multiplier(3)
        assert len([x for x in net.inputs if x.startswith("b")]) == 3

    def test_has_false_paths(self):
        """The 4x4 array multiplier's top product bits carry falsity."""
        net = array_multiplier(4, 4)
        at = arrival_times(net)
        delays = functional_delays(net, outputs=("p7",))
        assert delays["p7"] < at["p7"]

    def test_invalid_width(self):
        with pytest.raises(NetlistError):
            array_multiplier(0)


class TestBarrelShifter:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_shifts(self, stages):
        net = barrel_shifter(stages)
        width = 1 << stages
        for vec in random_vectors(net.inputs, 64, seed=19):
            d = sum((1 << i) for i in range(width) if vec[f"d{i}"])
            sh = sum((1 << k) for k in range(stages) if vec[f"s{k}"])
            values = net.output_values(vec)
            y = sum((1 << i) for i in range(width) if values[f"y{i}"])
            assert y == (d << sh) & ((1 << width) - 1)

    def test_all_paths_true(self):
        """Every mux path in a barrel shifter is sensitizable: functional
        delay equals topological delay."""
        net = barrel_shifter(3)
        at = arrival_times(net)
        delays = functional_delays(net)
        for out in net.outputs:
            assert delays[out] == at[out]

    def test_invalid_stages(self):
        with pytest.raises(NetlistError):
            barrel_shifter(0)


class TestAsHierarchicalWorkloads:
    def test_multiplier_bipartition_conservative(self):
        net = array_multiplier(4, 4)
        design = cascade_bipartition(net)
        result = DemandDrivenAnalyzer(design).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert flat_delay <= result.delay <= result.topological_delay

    def test_shifter_bipartition_exact(self):
        net = barrel_shifter(3)
        design = cascade_bipartition(net)
        result = DemandDrivenAnalyzer(design).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert result.delay == flat_delay  # nothing false to lose


class TestWallaceMultiplier:
    @pytest.mark.parametrize("wa,wb", [(2, 2), (3, 3), (4, 3)])
    def test_multiplies_exhaustively(self, wa, wb):
        from repro.circuits.datapath import wallace_multiplier

        net = wallace_multiplier(wa, wb)
        for vec in all_vectors(net.inputs):
            a = sum((1 << i) for i in range(wa) if vec[f"a{i}"])
            b = sum((1 << j) for j in range(wb) if vec[f"b{j}"])
            values = net.output_values(vec)
            p = sum(
                (1 << k)
                for k in range(wa + wb)
                if values.get(f"p{k}", False)
            )
            assert p == a * b

    def test_shallower_than_array(self):
        from repro.circuits.datapath import wallace_multiplier
        from repro.netlist.ops import depth

        assert depth(wallace_multiplier(4, 4)) < depth(array_multiplier(4, 4))

    def test_equivalent_to_array(self):
        from repro.circuits.datapath import wallace_multiplier
        from repro.netlist.aig import equivalent
        from repro.netlist.network import Network

        wal = wallace_multiplier(3, 3)
        arr = array_multiplier(3, 3)
        # align output name sets: array 3x3 omits the always-zero top bit
        if set(wal.outputs) != set(arr.outputs):
            missing = set(wal.outputs) - set(arr.outputs)
            patched = arr.copy("arr_patched")
            for name in missing:
                patched.add_gate(name, "CONST0", (), 0.0)
            patched.set_outputs(list(arr.outputs) + sorted(missing))
            arr = patched
        assert equivalent(wal, arr)

    def test_invalid_width(self):
        from repro.circuits.datapath import wallace_multiplier

        with pytest.raises(NetlistError):
            wallace_multiplier(0)
