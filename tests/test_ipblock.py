"""Tests for the black-box IP timing abstraction (Section 7)."""

import io

import pytest

from repro.circuits.adders import carry_skip_block
from repro.core.hier import HierarchicalAnalyzer, topological_models
from repro.core.ipblock import (
    black_box_from_library,
    black_box_module,
    export_timing_library,
    import_timing_library,
    stub_network,
)
from repro.core.required import characterize_network
from repro.core.timing_model import TimingModel
from repro.errors import AnalysisError
from repro.netlist.hierarchy import HierDesign
from repro.sta.topological import pin_to_pin_delay


@pytest.fixture(scope="module")
def block_models():
    block = carry_skip_block(2)
    return block, characterize_network(block)


def roundtrip(block, models) -> tuple:
    buf = io.StringIO()
    export_timing_library(
        "blk", block.inputs, block.outputs, models, buf
    )
    buf.seek(0)
    return import_timing_library(buf)


class TestLibraryIO:
    def test_roundtrip_preserves_models(self, block_models):
        block, models = block_models
        name, inputs, outputs, again = roundtrip(block, models)
        assert name == "blk"
        assert inputs == block.inputs
        assert outputs == block.outputs
        for out in outputs:
            assert again[out] == models[out]

    def test_missing_model_rejected(self, block_models):
        block, models = block_models
        partial = {k: v for k, v in models.items() if k != "c_out"}
        with pytest.raises(AnalysisError, match="missing model"):
            export_timing_library(
                "blk", block.inputs, block.outputs, partial, io.StringIO()
            )

    def test_misaligned_model_rejected(self, block_models):
        block, models = block_models
        bad = dict(models)
        bad["c_out"] = TimingModel("c_out", ("x",), ((1.0,),))
        with pytest.raises(AnalysisError, match="aligned"):
            export_timing_library(
                "blk", block.inputs, block.outputs, bad, io.StringIO()
            )

    def test_wrong_format_rejected(self):
        with pytest.raises(AnalysisError, match="not a repro"):
            import_timing_library(io.StringIO('{"format": "something"}'))

    def test_wrong_version_rejected(self):
        doc = ('{"format": "repro-timing-library", "version": 99, '
               '"module": "m", "inputs": [], "outputs": [], "models": {}}')
        with pytest.raises(AnalysisError, match="version"):
            import_timing_library(io.StringIO(doc))


class TestStub:
    def test_stub_topological_delays_match_worst_model(self, block_models):
        block, models = block_models
        stub = stub_network("bb", block.inputs, block.outputs, models)
        for out in block.outputs:
            for x in block.inputs:
                want = models[out].delay_from(x)
                got = pin_to_pin_delay(stub, x, out)
                assert got == want or (
                    want == float("-inf") and got == float("-inf")
                )

    def test_stub_exposes_interface_only(self, block_models):
        block, models = block_models
        stub = stub_network("bb", block.inputs, block.outputs, models)
        assert stub.inputs == block.inputs
        assert set(stub.outputs) == set(block.outputs)
        # far fewer gates than the real thing would scale to; all opaque
        assert all(
            g.gtype.value in ("BUF", "OR", "CONST0")
            for g in stub.gates.values()
        )


class TestBlackBoxAnalysis:
    def _design_with(self, module):
        design = HierDesign("sys")
        design.add_module(module)
        for x in module.inputs:
            design.add_input(x)
        conns = {p: p for p in module.inputs}
        conns.update({p: f"{p}_o" for p in module.outputs})
        design.add_instance("u0", module.name, conns)
        design.set_outputs([f"{p}_o" for p in module.outputs])
        return design

    def test_preloaded_models_used_verbatim(self, block_models):
        block, models = block_models
        module, models2 = black_box_module(
            "bb", block.inputs, block.outputs, models
        )
        design = self._design_with(module)
        analyzer = HierarchicalAnalyzer(design)
        analyzer.preload_models("bb", models2)
        result = analyzer.analyze({"c_in": 6.0})
        assert result.characterized_modules == ()
        # skip false path honoured through the abstraction
        assert result.output_times["c_out_o"] == 8.0

    def test_without_preload_stub_gives_conservative_answer(self, block_models):
        block, models = block_models
        module, _ = black_box_module("bb", block.inputs, block.outputs, models)
        design = self._design_with(module)
        # characterizing the stub itself finds no false paths (it is a
        # plain OR of buffers), so the result equals the stub's topological
        # delays — conservative but legal
        result = HierarchicalAnalyzer(design).analyze({"c_in": 6.0})
        assert result.output_times["c_out_o"] == 8.0

    def test_preload_validates_outputs(self, block_models):
        block, models = block_models
        module, models2 = black_box_module(
            "bb", block.inputs, block.outputs, models
        )
        design = self._design_with(module)
        analyzer = HierarchicalAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.preload_models("bb", {"c_out": models2["c_out"]})
        with pytest.raises(AnalysisError):
            analyzer.preload_models("ghost", models2)

    def test_black_box_from_library_end_to_end(self, block_models):
        block, models = block_models
        buf = io.StringIO()
        export_timing_library("bb", block.inputs, block.outputs, models, buf)
        buf.seek(0)
        module, imported = black_box_from_library(buf)
        design = self._design_with(module)
        analyzer = HierarchicalAnalyzer(design)
        analyzer.preload_models("bb", imported)
        white_box = HierarchicalAnalyzer(
            self._design_with_real(block)
        ).analyze()
        black = analyzer.analyze()
        for out in block.outputs:
            assert black.output_times[f"{out}_o"] == pytest.approx(
                white_box.output_times[f"{out}_o"]
            )

    def _design_with_real(self, block):
        from repro.netlist.hierarchy import Module

        return self._design_with(Module("bb", block))

    def test_topological_library_is_looser(self, block_models):
        block, _ = block_models
        legacy = topological_models(block)
        module, models = black_box_module(
            "bb", block.inputs, block.outputs, legacy
        )
        design = self._design_with(module)
        analyzer = HierarchicalAnalyzer(design)
        analyzer.preload_models("bb", models)
        result = analyzer.analyze({"c_in": 6.0})
        assert result.output_times["c_out_o"] == 12.0  # 6 + topological 6
