"""Tests for the observability layer: tracer, metrics, sinks, wiring."""

import io
import json

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.library.store import ModelLibrary
from repro.obs import (
    NULL_TRACER,
    PHASES,
    JsonlSink,
    Metrics,
    RingBufferSink,
    SummarySink,
    TraceRecord,
    Tracer,
    ensure_tracer,
    read_jsonl,
)


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestMetrics:
    def test_counter_create_on_use(self):
        m = Metrics()
        m.counter("a").inc()
        m.counter("a").inc(4)
        assert m.counter("a").value == 5

    def test_gauge_and_histogram(self):
        m = Metrics()
        m.gauge("depth").set(7)
        assert m.gauge("depth").value == 7
        h = m.histogram("lat")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.minimum == 1.0 and h.maximum == 3.0
        assert h.mean == 2.0

    def test_as_dict_round_trips_json(self):
        m = Metrics()
        m.counter("c").inc()
        m.gauge("g").set(2.5)
        m.histogram("h").observe(1.0)
        snapshot = json.loads(json.dumps(m.as_dict()))
        assert snapshot["counters"]["c"] == 1
        assert snapshot["gauges"]["g"] == 2.5
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["mean"] == 1.0

    def test_empty_histogram_mean_is_zero(self):
        m = Metrics()
        h = m.histogram("quiet")
        assert h.count == 0
        assert h.mean == 0.0  # no ZeroDivisionError on zero observations
        assert m.as_dict()["histograms"]["quiet"]["mean"] == 0.0


class TestTracer:
    def test_span_records_duration_and_phase(self):
        tracer = Tracer(clock=FakeClock())
        sink = RingBufferSink()
        tracer.add_sink(sink)
        with tracer.span("work", phase="characterization", module="m"):
            pass
        (record,) = sink.records()
        assert record.kind == "span" and record.name == "work"
        assert record.seconds > 0
        assert record.phase == "characterization"
        assert record.attrs["module"] == "m"
        assert tracer.phase_seconds["characterization"] == record.seconds

    def test_span_nesting_depth(self):
        tracer = Tracer(clock=FakeClock())
        sink = RingBufferSink()
        tracer.add_sink(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.records()  # inner exits (records) first
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0

    def test_event_and_counters(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("sat-call", seconds=0.25, variables=10)
        tracer.count("xbd0.sat_calls")
        tracer.gauge("nodes", 42)
        tracer.observe("lat", 0.5)
        assert tracer.name_counts["sat-call"] == 1
        assert tracer.metrics.counter("xbd0.sat_calls").value == 1
        assert tracer.metrics.gauge("nodes").value == 42
        # phase=None events never contribute to phase totals
        assert tracer.phase_seconds == {}

    def test_phase_totals_always_canonical(self):
        tracer = Tracer(clock=FakeClock())
        totals = tracer.phase_totals()
        assert set(PHASES) <= set(totals)
        assert all(v == 0.0 for v in totals.values())

    def test_summary_lists_phases_and_counts(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("tuple-prune", phase="characterization", seconds=1.0)
        tracer.count("required.checks", 3)
        text = tracer.summary()
        for phase in PHASES:
            assert phase in text
        assert "tuple-prune" in text
        assert "required.checks" in text

    def test_close_closes_sinks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        tracer.event("e")
        tracer.close()
        assert len(read_jsonl(path)) == 1


class TestNullTracer:
    def test_disabled_and_noop(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x", phase="cache"):
            pass
        NULL_TRACER.event("x", seconds=1.0)
        NULL_TRACER.count("c")
        NULL_TRACER.gauge("g", 1)
        NULL_TRACER.observe("h", 1)
        assert NULL_TRACER.name_counts == {}
        assert NULL_TRACER.phase_seconds == {}

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        real = Tracer(clock=FakeClock())
        assert ensure_tracer(real) is real

    def test_add_sink_rejected(self):
        with pytest.raises(ValueError):
            NULL_TRACER.add_sink(RingBufferSink())


class TestSinks:
    def test_ring_buffer_eviction(self):
        sink = RingBufferSink(capacity=2)
        for i in range(5):
            sink.emit(TraceRecord(kind="event", name=f"e{i}", t=float(i)))
        assert sink.emitted == 5
        assert len(sink) == 2
        assert [r.name for r in sink.records()] == ["e3", "e4"]
        assert sink.names() == {"e3", "e4"}
        assert sink.by_name("e4")[0].t == 4.0

    def test_jsonl_round_trip_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(
                TraceRecord(
                    kind="event",
                    name="cache-hit",
                    t=1.5,
                    seconds=0.25,
                    phase="cache",
                    depth=2,
                    attrs={"layer": "memory"},
                )
            )
        (rec,) = read_jsonl(path)
        assert rec.name == "cache-hit"
        assert rec.t == 1.5 and rec.seconds == 0.25
        assert rec.phase == "cache" and rec.depth == 2
        assert rec.attrs == {"layer": "memory"}

    def test_jsonl_borrowed_stream(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(TraceRecord(kind="event", name="e", t=0.0))
        sink.close()  # must not close a borrowed stream
        buf.seek(0)
        assert len(read_jsonl(buf)) == 1

    def test_jsonl_truncated_trailing_record_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for i in range(3):
                sink.emit(
                    TraceRecord(kind="event", name=f"e{i}", t=float(i))
                )
        lines = path.read_text().splitlines()
        # simulate a crash mid-write: last record cut in half
        path.write_text(
            "\n".join(lines[:2] + [lines[2][: len(lines[2]) // 2]])
        )
        records = read_jsonl(path)
        assert [r.name for r in records] == ["e0", "e1"]
        assert records.skipped == 1
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)

    def test_jsonl_missing_field_counted(self):
        buf = io.StringIO('{"kind": "event"}\n')
        records = read_jsonl(buf)
        assert list(records) == []
        assert records.skipped == 1

    def test_summary_sink_render(self):
        sink = SummarySink()
        assert "(no records)" in sink.render()
        sink.emit(TraceRecord(kind="event", name="a", t=0.0, seconds=1.0))
        sink.emit(TraceRecord(kind="event", name="a", t=1.0, seconds=0.5))
        text = sink.render()
        assert "a" in text and "2" in text and "1.500" in text

    def test_summary_sink_render_deterministic(self):
        records = [
            TraceRecord(kind="event", name=n, t=0.0, seconds=0.5)
            for n in ("beta", "alpha", "gamma")
        ]
        forward, backward = SummarySink(), SummarySink()
        for r in records:
            forward.emit(r)
        for r in reversed(records):
            backward.emit(r)
        # sorted by name: emission order must not change the table
        assert forward.render() == backward.render()
        assert forward.render() == forward.render()


class TestAnalyzerWiring:
    """Instrumentation must not perturb results and must emit the
    advertised record types."""

    def test_demand_driven_traced_result_identical(self):
        design = cascade_adder(8, 2)
        plain = DemandDrivenAnalyzer(design).analyze()
        tracer = Tracer()
        sink = RingBufferSink()
        tracer.add_sink(sink)
        traced = DemandDrivenAnalyzer(design, tracer=tracer).analyze()
        assert traced.output_times == plain.output_times
        assert traced.delay == plain.delay
        assert traced.refined_weights == plain.refined_weights
        names = sink.names()
        assert "sta-pass" in names
        assert "refinement-step" in names
        assert "second-longest-path" in names
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["demand.sta_passes"] == traced.sta_passes
        assert counters["demand.refinement_checks"] == (
            traced.refinement_checks
        )

    def test_hier_with_library_emits_cache_events(self, tmp_path):
        design = cascade_adder(4, 2)
        tracer = Tracer()
        sink = RingBufferSink()
        tracer.add_sink(sink)
        analyzer = HierarchicalAnalyzer(
            design,
            library=ModelLibrary(tmp_path / "cache"),
            tracer=tracer,
        )
        analyzer.analyze()
        names = sink.names()
        assert "cache-miss" in names
        assert "cache-store" in names
        assert "characterize-module" in names
        assert "propagate" in names
        # warm second analyzer: hits, no new characterizations
        sink2 = RingBufferSink()
        tracer2 = Tracer(sinks=[sink2])
        HierarchicalAnalyzer(
            design,
            library=ModelLibrary(tmp_path / "cache"),
            tracer=tracer2,
        ).analyze()
        assert "cache-hit" in sink2.names()
        assert "characterize-module" not in sink2.names()

    def test_phase_totals_sum_within_elapsed(self):
        design = cascade_adder(8, 2)
        tracer = Tracer()
        DemandDrivenAnalyzer(design, tracer=tracer).analyze()
        totals = tracer.phase_totals()
        assert all(v >= 0.0 for v in totals.values())
        assert sum(totals.values()) <= tracer.elapsed_seconds()

    def test_library_adopts_analyzer_tracer(self, tmp_path):
        design = cascade_adder(4, 2)
        library = ModelLibrary(tmp_path / "cache")  # untraced library
        tracer = Tracer()
        sink = RingBufferSink()
        tracer.add_sink(sink)
        HierarchicalAnalyzer(design, library=library, tracer=tracer).analyze()
        assert library.tracer is tracer
        assert "cache-miss" in sink.names()

    def test_stats_metrics_backed(self, tmp_path):
        library = ModelLibrary(tmp_path / "cache")
        stats = library.stats
        stats.hits += 2
        stats.misses += 1
        assert stats.hits == 2 and stats.misses == 1
        assert stats.metrics.counter("library.hits").value == 2
        stats.record_characterization("m", 0.5)
        assert stats.characterizations == 1
        assert stats.characterization_seconds == 0.5
        snapshot = stats.as_dict()
        assert snapshot["hits"] == 2
        assert snapshot["characterization_seconds"] == 0.5
        assert "model library:" in stats.render()
