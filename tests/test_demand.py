"""Tests for the demand-driven (Section 5) analyzer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import cascade_adder
from repro.circuits.iscaslike import shared_select_chain
from repro.circuits.partition import cascade_bipartition, group_cascade
from repro.circuits.random_logic import random_network
from repro.core.demand import DemandDrivenAnalyzer, flat_functional_delay
from repro.core.hier import HierarchicalAnalyzer
from repro.core.xbd0 import functional_delays
from repro.sta.topological import arrival_times


class TestCascades:
    @pytest.mark.parametrize("n,m", [(4, 2), (8, 2), (8, 4), (16, 2)])
    def test_matches_flat_exactly(self, n, m):
        design = cascade_adder(n, m)
        result = DemandDrivenAnalyzer(design).analyze()
        flat_delay, flat_times, _ = flat_functional_delay(design)
        assert result.delay == flat_delay
        for out, t in result.output_times.items():
            assert t == pytest.approx(flat_times[out])

    def test_last_carry_closed_form(self):
        """Paper Section 4: n cascaded 2-bit blocks -> carry at 2n + 6."""
        for blocks in (2, 4, 8):
            design = cascade_adder(2 * blocks, 2)
            result = DemandDrivenAnalyzer(design).analyze()
            assert result.output_times[f"c{2 * blocks}"] == 2 * blocks + 6

    def test_topological_delay_recorded(self):
        design = cascade_adder(8, 2)
        result = DemandDrivenAnalyzer(design).analyze()
        assert result.topological_delay == 26.0
        assert result.delay == 16.0

    def test_refinement_shared_across_instances(self):
        # 16 instances of the same block: the c_in->c_out pin pair is
        # refined once, not 16 times.
        design = cascade_adder(32, 2)
        result = DemandDrivenAnalyzer(design).analyze()
        key = ("csa_block2", "c_in", "c_out")
        assert key in result.refined_weights
        assert result.refined_weights[key] == 2.0
        # few checks despite 16 instances
        assert result.refinement_checks <= 12

    def test_matches_two_step_analyzer(self):
        for n, m in ((8, 2), (8, 4)):
            design = cascade_adder(n, m)
            demand = DemandDrivenAnalyzer(design).analyze().delay
            two_step = HierarchicalAnalyzer(design).analyze().delay
            assert demand == two_step


class TestArrivalConditions:
    def test_nonzero_arrivals(self):
        design = cascade_adder(4, 2)
        analyzer = DemandDrivenAnalyzer(design)
        base = analyzer.analyze().delay
        shifted = analyzer.analyze(
            {x: 3.0 for x in design.inputs}
        ).delay
        assert shifted == base + 3.0

    def test_late_carry_in(self):
        design = cascade_adder(4, 2)
        analyzer = DemandDrivenAnalyzer(design)
        flat = design.flatten()
        for cin_arr in (0.0, 6.0, 20.0):
            arrival = {"c_in": cin_arr}
            got = analyzer.analyze(arrival).delay
            want = max(functional_delays(flat, arrival).values())
            assert got == pytest.approx(want)


class TestOverestimation:
    def test_global_false_path_missed_but_conservative(self):
        net = shared_select_chain(6)
        design = cascade_bipartition(net, cut_fraction=0.85)
        result = DemandDrivenAnalyzer(design).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert result.delay > flat_delay  # the documented overestimation
        assert result.delay <= result.topological_delay

    def test_local_cut_recovers_exactness(self):
        net = shared_select_chain(6)
        design = cascade_bipartition(net, cut_fraction=0.5)
        result = DemandDrivenAnalyzer(design).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert result.delay == flat_delay


class TestGroupedCascade:
    def test_grouping_preserves_function_and_delay(self):
        design = cascade_adder(8, 2)
        grouped = group_cascade(design, 2)
        r1 = DemandDrivenAnalyzer(design).analyze()
        r2 = DemandDrivenAnalyzer(grouped).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert r1.delay == flat_delay
        assert flat_delay <= r2.delay <= r2.topological_delay


class TestConservativeness:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sandwich_on_random_bipartitions(self, seed):
        net = random_network(6, 24, seed=seed, num_outputs=2)
        try:
            design = cascade_bipartition(net)
        except Exception:
            return
        result = DemandDrivenAnalyzer(design).analyze()
        flat = design.flatten()
        topo = max(arrival_times(flat)[o] for o in flat.outputs)
        exact = max(functional_delays(flat).values())
        assert exact <= result.delay + 1e-9
        assert result.delay <= topo + 1e-9
