"""Tests for pin-pair explanations from the demand-driven analyzer."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.demand import DemandDrivenAnalyzer
from repro.errors import AnalysisError
from repro.sim.timed import vector_output_delay


@pytest.fixture(scope="module")
def analyzed():
    design = cascade_adder(8, 2)
    analyzer = DemandDrivenAnalyzer(design)
    analyzer.analyze()
    return analyzer


class TestExplainPin:
    def test_refined_pair(self, analyzed):
        exp = analyzed.explain_pin("csa_block2", "c_in", "c_out")
        assert exp.distinct_lengths == (6.0, 2.0)
        assert exp.effective_delay == 2.0
        assert exp.proven_exact
        # the rejected step was "drop the pair entirely" (-inf)
        assert exp.rejected_candidate == float("-inf")
        # with c_in never stabilizing, some vector never stabilizes c_out;
        # witness exists but no finite stable time can be quoted
        assert exp.witness is not None
        assert exp.witness_stable_time is None

    def test_unrefined_critical_pair(self, analyzed):
        exp = analyzed.explain_pin("csa_block2", "a0", "c_out")
        assert exp.effective_delay == 8.0
        assert exp.proven_exact
        assert exp.rejected_candidate == 6.0
        assert exp.witness is not None
        assert exp.witness_stable_time is not None
        assert exp.witness_stable_time > 0  # misses the deadline

    def test_witness_actually_defeats_candidate(self, analyzed):
        exp = analyzed.explain_pin("csa_block2", "a0", "c_out")
        design = analyzed.design
        cone = design.modules["csa_block2"].network.extract_cone("c_out")
        # rebuild the rejected arrival condition
        arrival = {}
        for x in cone.inputs:
            w = analyzed._states[("csa_block2", x, "c_out")].weight
            arrival[x] = -w
        arrival["a0"] = -exp.rejected_candidate
        late = vector_output_delay(cone, exp.witness, "c_out", arrival)
        assert late > 1e-9
        assert late == pytest.approx(exp.witness_stable_time)

    def test_never_critical_pair_not_checked(self, analyzed):
        # s0 pairs are never on the critical path of the cascade delay
        exp = analyzed.explain_pin("csa_block2", "c_in", "s0")
        assert exp.effective_delay == 2.0
        assert not exp.proven_exact
        assert exp.rejected_candidate is None
        assert exp.witness is None

    def test_unknown_pair_rejected(self, analyzed):
        with pytest.raises(AnalysisError):
            analyzed.explain_pin("csa_block2", "a1", "s0")

    def test_str_rendering(self, analyzed):
        text = str(analyzed.explain_pin("csa_block2", "a0", "c_out"))
        assert "a0 -> c_out" in text
        assert "proven exact" in text
        assert "rejected by vector" in text
