"""The benchmark regression gate: bench_compare on committed baselines."""

import importlib
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
BASELINES = ROOT / "benchmarks" / "baselines"


def _load_tool():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        return importlib.import_module("bench_compare")
    finally:
        sys.path.pop(0)


@pytest.fixture(scope="module")
def bc():
    return _load_tool()


@pytest.fixture()
def kernel_baseline():
    return BASELINES / "kernel_speedup.json"


class TestFlatten:
    def test_tracks_ratio_metrics_only(self, bc):
        payload = {
            "design": "x",
            "speedup": 3.0,
            "untraced_seconds": 0.5,
            "overhead_fraction": 0.01,
            "numpy": True,
        }
        flat = bc.flatten_metrics(payload)
        # booleans and untracked keys dropped; absolute timings kept
        # (gated later), ratios kept
        assert flat == {
            "speedup": 3.0,
            "untraced_seconds": 0.5,
            "overhead_fraction": 0.01,
        }

    def test_lists_index_by_batch(self, bc):
        payload = {
            "results": [
                {"batch": 1, "propagate": {"speedup": 2.0}},
                {"batch": 256, "propagate": {"speedup": 8.0}},
            ]
        }
        flat = bc.flatten_metrics(payload)
        assert flat["results[batch=1].propagate.speedup"] == 2.0
        assert flat["results[batch=256].propagate.speedup"] == 8.0


class TestCompare:
    def test_identical_payloads_pass(self, bc):
        payload = {"speedup": 5.0, "overhead_fraction": 0.02}
        deltas = bc.compare_payloads(payload, payload)
        assert deltas and not any(d.regressed for d in deltas)

    def test_speedup_drop_regresses(self, bc):
        base = {"speedup": 5.0}
        (delta,) = bc.compare_payloads(base, {"speedup": 4.0})
        assert delta.regressed  # 20% worse > 10% threshold
        (ok,) = bc.compare_payloads(base, {"speedup": 4.6})
        assert not ok.regressed  # 8% worse within threshold

    def test_speedup_gain_never_regresses(self, bc):
        (delta,) = bc.compare_payloads({"speedup": 5.0}, {"speedup": 50.0})
        assert not delta.regressed

    def test_overhead_compared_as_absolute_delta(self, bc):
        base = {"overhead_fraction": 0.01}
        (worse,) = bc.compare_payloads(base, {"overhead_fraction": 0.2})
        assert worse.regressed
        (ok,) = bc.compare_payloads(base, {"overhead_fraction": 0.05})
        assert not ok.regressed  # +0.04 absolute, within 0.10

    def test_missing_metric_regresses(self, bc):
        (delta,) = bc.compare_payloads({"speedup": 5.0}, {})
        assert delta.current is None
        assert delta.regressed
        assert "missing" in delta.describe()

    def test_absolute_seconds_gated_only_on_request(self, bc):
        base = {"cold_seconds": 1.0}
        assert bc.compare_payloads(base, {"cold_seconds": 10.0}) == []
        (delta,) = bc.compare_payloads(
            base, {"cold_seconds": 10.0}, include_absolute=True
        )
        assert delta.regressed


class TestCliExitCodes:
    def test_zero_on_committed_baseline(self, bc, kernel_baseline, capsys):
        assert kernel_baseline.exists(), "committed baseline missing"
        rc = bc.main(
            ["--baseline", str(kernel_baseline), str(kernel_baseline)]
        )
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_nonzero_on_synthetic_regression(
        self, bc, kernel_baseline, tmp_path, capsys
    ):
        payload = json.loads(kernel_baseline.read_text())
        payload["results"][-1]["propagate"]["speedup"] *= 0.5
        regressed = tmp_path / "kernel_speedup.json"
        regressed.write_text(json.dumps(payload))
        rc = bc.main(
            ["--baseline", str(kernel_baseline), str(regressed)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_directory_pairing(self, bc, tmp_path, capsys):
        rc = bc.main(
            ["--baseline", str(BASELINES), str(BASELINES)]
        )
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_usage_error_on_garbage(self, bc, tmp_path, capsys):
        bad = tmp_path / "kernel_speedup.json"
        bad.write_text("{not json")
        rc = bc.main(
            ["--baseline", str(bad), str(bad)]
        )
        assert rc == 2

    def test_obs_overhead_baseline_tracks_compiled_engine(self):
        payload = json.loads(
            (BASELINES / "obs_overhead.json").read_text()
        )
        assert payload["overhead_fraction"] < payload["budget_fraction"]
        compiled = payload["compiled"]
        assert compiled["engine"] == "compiled"
        assert (
            compiled["overhead_fraction"] < compiled["budget_fraction"]
        )

    def test_server_throughput_baseline_meets_target(self):
        payload = json.loads(
            (BASELINES / "server_throughput.json").read_text()
        )
        # the committed coalescing win the gate protects (ISSUE: >= 3x
        # at concurrency >= 32)
        assert payload["coalescing_speedup"] >= 3.0
        assert payload["levels"][-1]["concurrency"] >= 32


class TestMissingBaseline:
    def test_missing_baseline_file_is_exit_3(self, bc, tmp_path, capsys):
        results = tmp_path / "server_throughput.json"
        results.write_text(json.dumps({"coalescing_speedup": 3.4}))
        absent = tmp_path / "no_such_baseline.json"
        rc = bc.main(["--baseline", str(absent), str(results)])
        assert rc == bc.EXIT_MISSING_BASELINE == 3
        err = capsys.readouterr().err
        assert "does not exist" in err
        # the message is actionable: it says how to bootstrap one
        assert f"cp {results} {absent}" in err

    def test_unmatched_result_in_directory_mode_is_exit_3(
        self, bc, tmp_path, capsys
    ):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        baselines.mkdir()
        results.mkdir()
        (baselines / "known.json").write_text('{"speedup": 2.0}')
        (results / "known.json").write_text('{"speedup": 2.0}')
        (results / "novel.json").write_text('{"speedup": 9.0}')
        rc = bc.main(["--baseline", str(baselines), str(results)])
        assert rc == 3
        err = capsys.readouterr().err
        assert "novel.json" in err and "bootstrap" in err

    def test_matched_directories_still_pass(self, bc, tmp_path, capsys):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        baselines.mkdir()
        results.mkdir()
        (baselines / "known.json").write_text('{"speedup": 2.0}')
        (results / "known.json").write_text('{"speedup": 2.1}')
        rc = bc.main(["--baseline", str(baselines), str(results)])
        assert rc == 0
        assert "OK" in capsys.readouterr().out
