"""Property tests: the compiled kernel is bit-identical to the interpreter.

Random reconvergent networks are bipartitioned into random hierarchies;
every engine pairing (interpreted vs compiled, python vs numpy backend,
full vs incremental re-propagation) must agree *exactly* — the kernel
performs the same float64 additions, maxima, and minima as the
interpreted walks, so no tolerance is needed or used.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnalysisOptions
from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.kernel import (
    HAVE_NUMPY,
    CompiledTimingGraph,
    GraphState,
    NumpyExecutor,
    PythonExecutor,
    compile_network,
)

NEG_INF = float("-inf")

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def random_hierarchy(seed):
    """A random depth-1 design, or None when the bipartition fails."""
    net = random_network(5, 20, seed=seed, num_outputs=2)
    try:
        return cascade_bipartition(net)
    except Exception:
        return None


def random_scenarios(design, seed, count):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        scenario = {
            x: rng.uniform(-4.0, 10.0)
            for x in design.inputs
            if rng.random() < 0.8
        }
        out.append(scenario)
    return out


class TestHierEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_single_scenario_bit_identical(self, seed):
        design = random_hierarchy(seed)
        if design is None:
            return
        arrival = random_scenarios(design, seed + 1, 1)[0]
        interp = HierarchicalAnalyzer(
            design, options=AnalysisOptions(exec_engine="interpreted")
        ).analyze(arrival)
        comp = HierarchicalAnalyzer(
            design, options=AnalysisOptions(exec_engine="compiled")
        ).analyze(arrival)
        assert comp.net_times == interp.net_times
        assert comp.delay == interp.delay

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 20))
    def test_batch_bit_identical(self, seed, count):
        design = random_hierarchy(seed)
        if design is None:
            return
        scenarios = random_scenarios(design, seed + 2, count)
        analyzer = HierarchicalAnalyzer(design)
        interp = analyzer.analyze_batch(scenarios, backend="python")
        comp = analyzer.analyze_batch(scenarios)
        assert interp.delay == comp.delay
        for a, b in zip(interp, comp):
            assert a.net_times == b.net_times
            assert a.output_times == b.output_times
            assert a.slacks == b.slacks


class TestDemandEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_engines_agree_exactly(self, seed):
        design = random_hierarchy(seed)
        if design is None:
            return
        arrival = random_scenarios(design, seed + 3, 1)[0]
        interp = DemandDrivenAnalyzer(design).analyze(
            arrival, exec_engine="interpreted"
        )
        comp = DemandDrivenAnalyzer(design).analyze(
            arrival, exec_engine="compiled"
        )
        # The compiled STA must replay the interpreted refinement loop
        # decision-for-decision, not merely land on the same delay.
        assert comp.net_times == interp.net_times
        assert comp.delay == interp.delay
        assert comp.refined_weights == interp.refined_weights
        assert comp.refinement_checks == interp.refinement_checks
        assert comp.sta_passes == interp.sta_passes
        assert comp.required_times == interp.required_times

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_batch_engines_agree(self, seed):
        design = random_hierarchy(seed)
        if design is None:
            return
        scenarios = random_scenarios(design, seed + 4, 4)
        interp = DemandDrivenAnalyzer(design).analyze_batch(
            scenarios, exec_engine="interpreted"
        )
        comp = DemandDrivenAnalyzer(design).analyze_batch(
            scenarios, exec_engine="compiled"
        )
        assert interp.delay == comp.delay
        assert interp.stats == comp.stats
        for a, b in zip(interp, comp):
            assert a.net_times == b.net_times
            assert a.slacks == b.slacks


class TestExecutorEquivalence:
    @needs_numpy
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 24))
    def test_numpy_matches_python(self, seed, count):
        net = random_network(4, 16, seed=seed, num_outputs=2)
        plan = compile_network(net)
        rng = random.Random(seed + 5)
        rows = [
            [rng.uniform(-5.0, 12.0) for _ in range(plan.n_inputs)]
            for _ in range(count)
        ]
        assert (
            PythonExecutor(plan).propagate(rows)
            == NumpyExecutor(plan).propagate(rows)
        )


def random_dag(rng):
    """Random CompiledTimingGraph with one unique key per edge."""
    n = rng.randint(6, 16)
    n_in = rng.randint(2, 3)
    nets = [f"n{i}" for i in range(n)]
    edges = []
    for dst in range(n_in, n):
        fanin = rng.sample(range(dst), k=min(dst, rng.randint(1, 3)))
        for src in fanin:
            edges.append(
                (nets[src], nets[dst], len(edges),
                 round(rng.uniform(0.5, 8.0), 3))
            )
    has_out = {e[0] for e in edges}
    sinks = [x for x in nets[n_in:] if x not in has_out]
    outputs = sinks or [nets[-1]]
    return CompiledTimingGraph(nets, edges, nets[:n_in], outputs)


class TestIncrementalReflow:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_reflow_matches_full_repropagation(self, seed):
        rng = random.Random(seed)
        graph = random_dag(rng)
        arrival = {
            graph.nets[i]: round(rng.uniform(0.0, 5.0), 3)
            for i in range(graph.n_inputs)
        }
        state = GraphState(graph, arrival)
        state.run_full()
        for _ in range(8):
            eid = rng.randrange(graph.n_edges)
            key = graph.edge_key[eid]
            weight = graph.edge_weight[eid]
            if weight == NEG_INF:
                continue
            if rng.random() < 0.25:
                new = NEG_INF  # refinement proved the pin pair false
            else:
                new = round(weight - rng.uniform(0.0, 4.0), 3)
            state.reflow(graph.set_key_weight(key, new))
            fresh = GraphState(graph, arrival)
            fresh.run_full()
            assert state.at == fresh.at
            assert state.rt == fresh.rt
            assert state.deadline == fresh.deadline

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000))
    def test_reflow_touches_fewer_nodes_than_full(self, seed):
        rng = random.Random(seed)
        graph = random_dag(rng)
        state = GraphState(graph, {})
        state.run_full()
        total = 0
        rounds = 0
        for _ in range(5):
            eid = rng.randrange(graph.n_edges)
            weight = graph.edge_weight[eid]
            if weight == NEG_INF:
                continue
            dirty = graph.set_key_weight(
                graph.edge_key[eid], weight - 0.125
            )
            state.reflow(dirty)
            rounds += 1
        total = state.reflow_forward_nodes
        # Each incremental pass touches at most every non-input node.
        assert total <= rounds * (len(graph.nets) - graph.n_inputs)
