"""Conservatism-audit tests: ForensicsReport on the paper's example.

The carry-skip cascade is the paper's flagship false-path case: the
topological bound charges the ripple carry through every block, and a
single refinement of the block's ``c_in -> c_out`` pin pair (the
carry-skip mux) removes the pessimism.  The audit must attribute the
whole gap to that refinement with exact float equality.
"""

import json
from pathlib import Path

import pytest

from repro.api import AnalysisSession
from repro.circuits.adders import cascade_adder
from repro.cli import main
from repro.core.demand import DemandDrivenAnalyzer
from repro.errors import AnalysisError

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "csa8_2.v"


@pytest.fixture(scope="module")
def report():
    analyzer = DemandDrivenAnalyzer(cascade_adder(8, 2))
    analyzer.analyze()
    return analyzer.forensics_report()


class TestCarrySkipAudit:
    def test_gap_fully_attributed(self, report):
        assert report.gap_closed > 0
        assert report.fully_attributed
        for row in report.outputs:
            assert row.fully_attributed, row.output

    def test_skip_refinement_closes_the_carry_gap(self, report):
        assert len(report.events) >= 1
        first = report.events[0]
        assert first.module == "csa_block2"
        assert (first.input_port, first.output_port) == ("c_in", "c_out")
        assert first.weight_after < first.weight_before
        assert first.slack_movement > 0
        c8 = report.output("c8")
        assert c8.gap > 0
        assert c8.refinements  # the carry output was moved

    def test_chain_telescopes_exactly(self, report):
        for row in report.outputs:
            chain = row.attribution_chain()
            if not chain:
                assert row.topological_arrival == row.refined_arrival
                continue
            assert chain[0][0] == row.topological_arrival
            assert chain[-1][1] == row.refined_arrival
            for prev, nxt in zip(chain, chain[1:]):
                assert prev[1] == nxt[0]

    def test_delay_matches_analysis(self, report):
        result = DemandDrivenAnalyzer(cascade_adder(8, 2)).analyze()
        assert report.delay == result.delay
        assert report.topological_delay >= report.delay

    def test_unknown_output_raises(self, report):
        with pytest.raises(KeyError):
            report.output("ghost")

    def test_as_dict_round_trips_json(self, report):
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["design"] == report.design
        assert payload["fully_attributed"] is True
        assert len(payload["outputs"]) == len(report.outputs)
        assert len(payload["events"]) == len(report.events)
        by_name = {o["output"]: o for o in payload["outputs"]}
        assert by_name["c8"]["gap"] == report.output("c8").gap

    def test_render_lists_outputs_and_events(self, report):
        text = report.render()
        assert "Conservatism audit" in text
        assert "refined delay" in text
        for row in report.outputs:
            assert row.output in text
        assert "csa_block2" in text


class TestEnginesAndSession:
    def test_engines_agree_exactly(self):
        reports = {}
        for engine in ("interpreted", "compiled"):
            analyzer = DemandDrivenAnalyzer(cascade_adder(8, 2))
            analyzer.analyze(exec_engine=engine)
            reports[engine] = analyzer.forensics_report()
            assert reports[engine].exec_engine == engine
        interp = reports["interpreted"].as_dict()
        comp = reports["compiled"].as_dict()
        interp.pop("exec_engine")
        comp.pop("exec_engine")
        assert interp == comp

    def test_report_before_analyze_raises(self):
        analyzer = DemandDrivenAnalyzer(cascade_adder(8, 2))
        with pytest.raises(AnalysisError):
            analyzer.forensics_report()

    def test_session_forensics_fresh_each_call(self):
        session = AnalysisSession(cascade_adder(8, 2))
        session.demand_driven()  # warms the cached analyzer
        first = session.forensics()
        second = session.forensics()
        # a fresh analyzer per call: the topological bound is not
        # understated by previously refined weights
        assert first.gap_closed > 0
        assert first.as_dict() == second.as_dict()

    def test_session_forensics_with_arrival(self):
        session = AnalysisSession(cascade_adder(8, 2))
        late = session.forensics({"c_in": 10.0})
        assert late.arrival == {"c_in": 10.0}
        assert late.delay >= session.forensics().delay


class TestForensicsCli:
    @pytest.fixture()
    def design_file(self):
        return str(EXAMPLE)

    def test_forensics_command(self, design_file, capsys):
        assert main(["forensics", design_file]) == 0
        out = capsys.readouterr().out
        assert "Conservatism audit" in out
        assert "csa_block2" in out

    def test_forensics_json(self, design_file, capsys):
        assert main(["forensics", design_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fully_attributed"] is True
        assert payload["gap_closed"] > 0

    def test_demand_export_trace(self, design_file, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.prom"
        assert (
            main(
                [
                    "demand",
                    design_file,
                    "--export-trace",
                    str(trace),
                    "--export-metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {
            "kernel-compile",
            "kernel-propagate",
            "kernel-reflow",
            "refinement-step",
            "refinement-applied",
        } <= names
        assert "# TYPE" in metrics.read_text()
