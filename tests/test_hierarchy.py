"""Unit tests for hierarchical designs and flattening."""

import pytest

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.errors import NetlistError
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.netlist.ops import networks_equivalent_on
from repro.sim.vectors import all_vectors, random_vectors


def inverter_module() -> Module:
    net = Network("inv")
    net.add_input("i")
    net.add_gate("o", "NOT", ["i"], 1.0)
    net.set_outputs(["o"])
    return Module("inv", net)


def chain_design(depth: int) -> HierDesign:
    design = HierDesign("chain")
    design.add_module(inverter_module())
    design.add_input("x")
    prev = "x"
    for i in range(depth):
        design.add_instance(f"u{i}", "inv", {"i": prev, "o": f"n{i}"})
        prev = f"n{i}"
    design.set_outputs([prev])
    return design


class TestConstruction:
    def test_duplicate_module_rejected(self):
        design = HierDesign()
        design.add_module(inverter_module())
        with pytest.raises(NetlistError):
            design.add_module(inverter_module())

    def test_unknown_module_rejected(self):
        design = HierDesign()
        design.add_input("x")
        with pytest.raises(NetlistError):
            design.add_instance("u", "ghost", {})

    def test_unconnected_port_rejected(self):
        design = HierDesign()
        design.add_module(inverter_module())
        design.add_input("x")
        with pytest.raises(NetlistError):
            design.add_instance("u", "inv", {"i": "x"})  # 'o' missing

    def test_unknown_port_rejected(self):
        design = HierDesign()
        design.add_module(inverter_module())
        design.add_input("x")
        with pytest.raises(NetlistError):
            design.add_instance("u", "inv", {"i": "x", "o": "y", "zz": "w"})

    def test_multiple_drivers_rejected(self):
        design = HierDesign()
        design.add_module(inverter_module())
        design.add_input("x")
        design.add_instance("u1", "inv", {"i": "x", "o": "y"})
        design.add_instance("u2", "inv", {"i": "x", "o": "y"})
        with pytest.raises(NetlistError):
            design.validate()

    def test_undriven_input_rejected(self):
        design = HierDesign()
        design.add_module(inverter_module())
        design.add_instance("u", "inv", {"i": "ghost", "o": "y"})
        design.set_outputs(["y"])
        with pytest.raises(NetlistError):
            design.validate()

    def test_cycle_rejected(self):
        design = HierDesign()
        design.add_module(inverter_module())
        design.add_instance("u1", "inv", {"i": "a", "o": "b"})
        design.add_instance("u2", "inv", {"i": "b", "o": "a"})
        with pytest.raises(NetlistError):
            design.instance_order()


class TestInstanceOrder:
    def test_chain_is_ordered(self):
        design = chain_design(5)
        order = design.instance_order()
        assert order == [f"u{i}" for i in range(5)]

    def test_order_respects_dependencies_not_insertion(self):
        design = HierDesign()
        design.add_module(inverter_module())
        design.add_input("x")
        # inserted out of order
        design.add_instance("late", "inv", {"i": "mid", "o": "out"})
        design.add_instance("early", "inv", {"i": "x", "o": "mid"})
        design.set_outputs(["out"])
        order = design.instance_order()
        assert order.index("early") < order.index("late")


class TestFlatten:
    def test_chain_flatten_function(self):
        design = chain_design(3)
        flat = design.flatten()
        assert flat.output_values({"x": True}) == {"n2": False}
        assert flat.output_values({"x": False}) == {"n2": True}

    def test_flatten_preserves_carry_skip_function(self):
        design = cascade_adder(4, 2)
        flat = design.flatten()
        for vec in random_vectors(flat.inputs, 40, seed=3):
            values = flat.output_values(vec)
            a = sum((1 << i) for i in range(4) if vec[f"a{i}"])
            b = sum((1 << i) for i in range(4) if vec[f"b{i}"])
            total = a + b + int(vec["c_in"])
            got = sum(
                (1 << i) for i in range(4) if values[f"s{i}"]
            ) + (16 if values["c4"] else 0)
            assert got == total

    def test_flatten_matches_monolithic_block(self):
        # One 2-bit block instantiated alone == the block itself.
        block = carry_skip_block(2)
        design = HierDesign("single")
        design.add_module(Module("blk", block))
        for x in block.inputs:
            design.add_input(x)
        conns = {p: p for p in (*block.inputs,)}
        conns.update({p: f"{p}_o" for p in block.outputs})
        design.add_instance("u0", "blk", conns)
        design.set_outputs([f"{p}_o" for p in block.outputs])
        flat = design.flatten()
        for vec in all_vectors(block.inputs):
            expected = block.output_values(vec)
            got = flat.output_values(vec)
            for port, value in expected.items():
                assert got[f"{port}_o"] is value

    def test_flatten_output_buffer_has_zero_delay(self):
        design = chain_design(1)
        flat = design.flatten()
        assert flat.gate("n0").gtype.value == "BUF"
        assert flat.gate("n0").delay == 0.0

    def test_shared_module_instances_are_renamed_apart(self):
        design = chain_design(2)
        flat = design.flatten()
        assert flat.has_signal("u0.o")
        assert flat.has_signal("u1.o")
