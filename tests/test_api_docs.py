"""The API-doc generator runs and reflects the public surface."""

import importlib
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _load_generator():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        return importlib.import_module("gen_api_docs")
    finally:
        sys.path.pop(0)


def test_generator_runs_and_covers_surface():
    gen = _load_generator()
    text = gen.generate()
    for anchor in (
        "## `repro.core`",
        "StabilityAnalyzer",
        "HierarchicalAnalyzer",
        "DemandDrivenAnalyzer",
        "## `repro.atpg`",
        "## `repro.seq`",
        "carry_skip_block",
    ):
        assert anchor in text, anchor


def test_every_public_item_has_a_docstring():
    gen = _load_generator()
    text = gen.generate()
    assert "(no docstring)" not in text


def test_committed_file_loadable():
    api = ROOT / "docs" / "API.md"
    assert api.exists()
    assert "# API reference" in api.read_text()
