"""Tests for the footnote-12 per-instance flat baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import cascade_adder
from repro.circuits.iscaslike import shared_select_chain
from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.demand import flat_functional_delay
from repro.core.hier import HierarchicalAnalyzer
from repro.core.subflat import SubcircuitFlatAnalyzer


class TestAccuracy:
    @pytest.mark.parametrize("n,m", [(4, 2), (8, 2), (8, 4)])
    def test_matches_flat_on_cascades(self, n, m):
        design = cascade_adder(n, m)
        result = SubcircuitFlatAnalyzer(design).analyze()
        flat_delay, flat_times, _ = flat_functional_delay(design)
        assert result.delay == flat_delay
        for out, t in result.output_times.items():
            assert t == pytest.approx(flat_times[out])

    def test_analyses_scale_with_instances_not_modules(self):
        design = cascade_adder(16, 2)  # 8 instances, 1 module
        result = SubcircuitFlatAnalyzer(design).analyze()
        assert result.module_analyses == 8

    def test_at_least_as_accurate_as_two_step(self):
        # on the gfp cut both lose the global falsity; check ordering
        design = cascade_bipartition(shared_select_chain(6), 0.85)
        sub = SubcircuitFlatAnalyzer(design).analyze()
        two_step = HierarchicalAnalyzer(design).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert flat_delay <= sub.delay <= two_step.delay + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sandwich_random(self, seed):
        net = random_network(6, 22, seed=seed, num_outputs=2)
        try:
            design = cascade_bipartition(net)
        except Exception:
            return
        sub = SubcircuitFlatAnalyzer(design).analyze()
        two_step = HierarchicalAnalyzer(design).analyze()
        flat_delay, _, _ = flat_functional_delay(design)
        assert flat_delay <= sub.delay + 1e-9
        assert sub.delay <= two_step.delay + 1e-9

    def test_arrival_condition(self):
        design = cascade_adder(4, 2)
        analyzer = SubcircuitFlatAnalyzer(design)
        base = analyzer.analyze().delay
        shifted = analyzer.analyze(
            {x: 1.5 for x in design.inputs}
        ).delay
        assert shifted == base + 1.5
