"""Golden reproduction tests: the exact delay numbers of every table.

CPU columns vary by machine; the delay columns are deterministic and are
pinned here (the same values recorded in EXPERIMENTS.md).  This is the
single test module to read to see the whole reproduction at a glance.
"""

import pytest

from repro.bench.table1 import run_row as table1_row
from repro.bench.table2 import run_row as table2_row
from repro.bench.table3 import run_row as table3_row

#: circuit -> (topological, hierarchical, flat)
TABLE1_GOLDEN = {
    (8, 2): (26.0, 16.0, 16.0),
    (8, 4): (22.0, 20.0, 20.0),
    (16, 4): (42.0, 24.0, 24.0),
    (16, 8): (38.0, 36.0, 36.0),
}

TABLE2_GOLDEN = {
    "c17": (3.0, 3.0, 3.0),
    "alu4": (14.0, 14.0, 14.0),
    "cla8": (4.0, 4.0, 4.0),
    "cmp8": (10.0, 10.0, 10.0),
    "rnd2": (18.0, 13.0, 13.0),
    "gfp": (8.0, 4.0, 2.0),
    "csaflat8": (26.0, 26.0, 16.0),
}

TABLE3_GOLDEN = {
    "mul4x4": (21.0, 21.0, 20.0),
    "bshift8": (6.0, 6.0, 6.0),
    "csel8.2": (12.0, 12.0, 12.0),
    "alu8": (22.0, 22.0, 22.0),
}


@pytest.mark.parametrize("nm,golden", sorted(TABLE1_GOLDEN.items()))
def test_table1_delays(nm, golden):
    row = table1_row(*nm)
    assert (
        row.topological_delay,
        row.hierarchical_delay,
        row.flat_delay,
    ) == golden


@pytest.mark.parametrize("name,golden", sorted(TABLE2_GOLDEN.items()))
def test_table2_delays(name, golden):
    row = table2_row(name)
    assert (
        row.topological_delay,
        row.hierarchical_delay,
        row.flat_delay,
    ) == golden


@pytest.mark.parametrize("name,golden", sorted(TABLE3_GOLDEN.items()))
def test_table3_delays(name, golden):
    row = table3_row(name)
    assert (
        row.topological_delay,
        row.hierarchical_delay,
        row.flat_delay,
    ) == golden


def test_figures_golden():
    from repro.bench.figures import compute_figures

    data = compute_figures()
    assert data.fig4_tmp == 8.0
    assert data.fig4_c4 == 10.0
    assert data.fig5_cout == 8.0
    assert data.fig5_functional_slack == 1.0
    assert data.fig5_topological_slack == -3.0
