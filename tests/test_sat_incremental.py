"""Property tests for the incremental SAT session.

An :class:`IncrementalSolver` session must be an *exact* stand-in for a
fresh :class:`Solver` on the currently-live clause set: the same
SAT/UNSAT verdict at every point of a push/pop script, under arbitrary
assumptions, and regardless of how aggressively the learned-clause
database is reduced.  Models are checked semantically (they must satisfy
the live clauses) since the search order legitimately differs.

The portfolio test at the bottom pins the demand-driven refinement
contract: results are bit-identical for any worker count.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.sat.incremental import IncrementalSolver
from repro.sat.solver import Solver, SolveResult


def random_clauses(rng, num_vars, count):
    """Random 1..3-literal clauses over ``num_vars`` variables."""
    out = []
    for _ in range(count):
        width = rng.randint(1, 3)
        vs = rng.sample(range(1, num_vars + 1), width)
        out.append(tuple(v if rng.random() < 0.5 else -v for v in vs))
    return out


def reference_solve(num_vars, clauses, assumptions=()):
    """Fresh one-shot solve of exactly the live clause set."""
    cnf = CNF()
    while cnf.num_vars < num_vars:
        cnf.new_var()
    for c in clauses:
        cnf.add_clause(c)
    for a in assumptions:
        cnf.add_clause((a,))
    return Solver(cnf).solve()


def assert_model_satisfies(model, clauses, assumptions=()):
    for clause in list(clauses) + [(a,) for a in assumptions]:
        assert any(
            model.get(abs(lit), False) == (lit > 0) for lit in clause
        ), f"model violates {clause}"


class TestSessionEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_push_pop_script_matches_fresh_solver(self, seed):
        """Random interleavings of add/push/pop/solve track a fresh solver."""
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        session = IncrementalSolver()
        for _ in range(num_vars):
            session.new_var()
        permanent = random_clauses(rng, num_vars, rng.randint(1, 6))
        for c in permanent:
            session.add_clause(c)
        # stack of live frame clause-batches mirrors the session frames
        live_frames: list[list[tuple[int, ...]]] = []
        for _ in range(rng.randint(2, 10)):
            op = rng.random()
            if op < 0.4:
                session.push()
                batch = random_clauses(rng, num_vars, rng.randint(1, 4))
                for c in batch:
                    session.add_clause(c)
                live_frames.append(batch)
            elif op < 0.6 and live_frames:
                session.pop()
                live_frames.pop()
            else:
                live = permanent + [c for b in live_frames for c in b]
                result = session.solve()
                assert result is reference_solve(num_vars, live)
                if result is SolveResult.SAT:
                    assert_model_satisfies(session.model(), live)
        # after draining every frame only the permanent clauses remain
        while session.depth:
            session.pop()
        result = session.solve()
        assert result is reference_solve(num_vars, permanent)
        if result is SolveResult.SAT:
            assert_model_satisfies(session.model(), permanent)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_assumptions_match_unit_clauses(self, seed):
        """solve(assumptions) ≡ fresh solve with the assumptions as units."""
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        session = IncrementalSolver()
        for _ in range(num_vars):
            session.new_var()
        clauses = random_clauses(rng, num_vars, rng.randint(2, 10))
        for c in clauses:
            session.add_clause(c)
        for _ in range(4):
            vs = rng.sample(range(1, num_vars + 1), rng.randint(1, 3))
            assumptions = tuple(
                v if rng.random() < 0.5 else -v for v in vs
            )
            result = session.solve(assumptions)
            assert result is reference_solve(num_vars, clauses, assumptions)
            if result is SolveResult.SAT:
                assert_model_satisfies(session.model(), clauses, assumptions)
        # an assumption-falsified UNSAT must not poison the session
        assert session.solve() is reference_solve(num_vars, clauses)

    def test_contradictory_assumptions_unsat_then_recover(self):
        session = IncrementalSolver()
        x = session.new_var()
        y = session.new_var()
        session.add_clause((x, y))
        assert session.solve((x, -x)) is SolveResult.UNSAT
        assert session.solve((-x,)) is SolveResult.SAT
        assert session.model()[y] is True
        assert session.solve() is SolveResult.SAT

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_db_reduction_boundary(self, seed):
        """A tiny reduce_base forces clause-DB sweeps mid-session; frame
        retraction must stay sound across them."""
        rng = random.Random(seed)
        num_vars = rng.randint(6, 10)
        session = IncrementalSolver(reduce_base=1)
        for _ in range(num_vars):
            session.new_var()
        permanent = random_clauses(rng, num_vars, rng.randint(4, 12))
        for c in permanent:
            session.add_clause(c)
        for _ in range(6):
            session.push()
            batch = random_clauses(rng, num_vars, rng.randint(2, 6))
            for c in batch:
                session.add_clause(c)
            live = permanent + batch
            result = session.solve()
            assert result is reference_solve(num_vars, live)
            if result is SolveResult.SAT:
                assert_model_satisfies(session.model(), live)
            session.pop()
            # retraction restored the permanent-only verdict
            assert session.solve() is reference_solve(num_vars, permanent)


class TestSessionSurface:
    def test_pop_without_push_raises(self):
        with pytest.raises(SolverError):
            IncrementalSolver().pop()

    def test_add_cnf_then_solve(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause((a,))
        cnf.add_clause((-a, b))
        session = IncrementalSolver()
        session.add_cnf(cnf)
        assert session.num_vars == cnf.num_vars
        assert session.solve() is SolveResult.SAT
        model = session.model()
        assert model[a] is True and model[b] is True

    def test_stats_track_lifecycle(self):
        session = IncrementalSolver()
        x = session.new_var()
        session.add_clause((x,))
        session.push()
        session.add_clause((-x,))
        assert session.solve() is SolveResult.UNSAT
        session.pop()
        assert session.solve() is SolveResult.SAT
        stats = session.stats
        assert stats["solve_calls"] == 2
        assert stats["frames_pushed"] == 1
        assert stats["frames_popped"] == 1
        assert stats["clauses_added"] >= 2


class TestPortfolioDeterminism:
    @pytest.mark.parametrize("sat_mode", ["incremental", "oneshot"])
    def test_results_independent_of_worker_count(self, sat_mode):
        """Same refinement set and delays for any portfolio_jobs value."""
        from repro.api import AnalysisOptions
        from repro.circuits.adders import cascade_adder
        from repro.core.demand import DemandDrivenAnalyzer

        design = cascade_adder(8, 2)
        results = []
        for jobs in (1, 3):
            options = AnalysisOptions(
                sat_mode=sat_mode,
                portfolio_jobs=jobs,
                refine_order="movement",
            )
            results.append(
                DemandDrivenAnalyzer(design, options=options).analyze()
            )
        base, parallel = results
        assert parallel.output_times == base.output_times
        assert parallel.refined_weights == base.refined_weights
        assert parallel.refinement_checks == base.refinement_checks
