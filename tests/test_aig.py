"""Tests for the AIG package and SAT-backed equivalence checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block, cascade_adder, ripple_adder
from repro.circuits.random_logic import random_network
from repro.errors import NetlistError
from repro.netlist.aig import (
    AIG,
    FALSE_EDGE,
    TRUE_EDGE,
    edge_not,
    equivalent,
    network_to_aig,
)
from repro.netlist.network import Network
from repro.netlist.transform import decompose_complex, propagate_constants
from repro.sim.vectors import all_vectors


class TestAIGPrimitives:
    def test_constant_folding(self):
        aig = AIG()
        a = aig.input_edge("a")
        assert aig.conj(a, FALSE_EDGE) == FALSE_EDGE
        assert aig.conj(a, TRUE_EDGE) == a
        assert aig.conj(a, a) == a
        assert aig.conj(a, edge_not(a)) == FALSE_EDGE
        assert aig.disj(a, TRUE_EDGE) == TRUE_EDGE

    def test_strashing_merges_identical_structure(self):
        aig = AIG()
        a, b = aig.input_edge("a"), aig.input_edge("b")
        before = aig.num_nodes()
        n1 = aig.conj(a, b)
        n2 = aig.conj(b, a)  # commuted: must hit the strash table
        assert n1 == n2
        assert aig.num_nodes() == before + 1

    def test_evaluate(self):
        aig = AIG()
        a, b = aig.input_edge("a"), aig.input_edge("b")
        f = aig.xor(a, b)
        for va in (False, True):
            for vb in (False, True):
                assert aig.evaluate(f, {"a": va, "b": vb}) == (va != vb)

    def test_mux_semantics(self):
        aig = AIG()
        s = aig.input_edge("s")
        d0 = aig.input_edge("d0")
        d1 = aig.input_edge("d1")
        m = aig.mux(s, d0, d1)
        for vs in (False, True):
            for v0 in (False, True):
                for v1 in (False, True):
                    want = v1 if vs else v0
                    got = aig.evaluate(
                        m, {"s": vs, "d0": v0, "d1": v1}
                    )
                    assert got == want

    def test_edge_equal_sat(self):
        aig = AIG()
        a, b = aig.input_edge("a"), aig.input_edge("b")
        # De Morgan: ¬(a·b) == ¬a + ¬b (different structure, same function)
        left = edge_not(aig.conj(a, b))
        right = aig.disj(edge_not(a), edge_not(b))
        assert aig.edge_equal_sat(left, right)
        assert not aig.edge_equal_sat(a, b)
        assert not aig.edge_equal_sat(a, edge_not(a))
        assert aig.edge_equal_sat(
            aig.conj(a, edge_not(a)), FALSE_EDGE
        )


class TestNetworkToAIG:
    def test_strash_preserves_function(self):
        net = carry_skip_block(2)
        aig, edges = network_to_aig(net)
        for vec in all_vectors(net.inputs):
            values = net.evaluate(vec)
            for out in net.outputs:
                assert aig.evaluate(edges[out], vec) == values[out]

    def test_all_gate_types(self):
        net = Network("every")
        a, b, c = net.add_inputs(["a", "b", "c"])
        net.add_gate("nand_", "NAND", [a, b])
        net.add_gate("nor_", "NOR", [b, c])
        net.add_gate("xnor_", "XNOR", [a, c])
        net.add_gate("mux_", "MUX", [a, b, c])
        net.add_gate("one_", "CONST1", [])
        net.add_gate("zero_", "CONST0", [])
        net.add_gate("buf_", "BUF", [a])
        net.set_outputs(["nand_", "nor_", "xnor_", "mux_", "one_",
                         "zero_", "buf_"])
        aig, edges = network_to_aig(net)
        for vec in all_vectors(net.inputs):
            values = net.evaluate(vec)
            for out in net.outputs:
                assert aig.evaluate(edges[out], vec) == values[out], out


class TestEquivalence:
    def test_self_equivalence(self):
        net = carry_skip_block(2)
        assert equivalent(net, net.copy())

    def test_transform_equivalence(self):
        net = carry_skip_block(2)
        assert equivalent(net, decompose_complex(net))

    def test_flatten_equivalence(self):
        design = cascade_adder(6, 2)
        assert equivalent(design.flatten(), design.flatten(name="again"))

    def test_skip_adder_equals_ripple_adder(self):
        """The structural payoff: two different adder implementations
        proven functionally identical."""
        skip = cascade_adder(4, 2).flatten(name="skip")
        ripple = ripple_adder(4, name="ripple")
        # align interfaces: ripple outputs are s0..s3, c4 — same names;
        # skip flatten shares them too
        assert set(skip.outputs) == set(ripple.outputs)
        assert equivalent(skip, ripple)

    def test_detects_difference(self):
        left = Network("l")
        left.add_inputs(["a", "b"])
        left.add_gate("z", "AND", ["a", "b"])
        left.set_outputs(["z"])
        right = Network("r")
        right.add_inputs(["a", "b"])
        right.add_gate("z", "NAND", ["a", "b"])
        right.set_outputs(["z"])
        assert not equivalent(left, right)

    def test_interface_mismatch_rejected(self):
        left = Network("l")
        left.add_input("a")
        left.add_gate("z", "BUF", ["a"])
        left.set_outputs(["z"])
        right = Network("r")
        right.add_inputs(["a", "b"])
        right.add_gate("z", "BUF", ["a"])
        right.set_outputs(["z"])
        with pytest.raises(NetlistError):
            equivalent(left, right)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_transform_chain(self, seed):
        net = random_network(5, 16, seed=seed, num_outputs=2)
        rewritten = propagate_constants(decompose_complex(net))
        assert equivalent(net, rewritten)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_mutation_detected(self, seed):
        net = random_network(5, 16, seed=seed, num_outputs=1)
        out = net.outputs[0]
        mutated = Network("mut")
        for x in net.inputs:
            mutated.add_input(x)
        for s in net.topological_order():
            if net.is_input(s):
                continue
            g = net.gate(s)
            gtype = g.gtype
            if s == out and gtype.value in ("AND", "OR"):
                gtype = "OR" if gtype.value == "AND" else "AND"
            mutated.add_gate(s, gtype, g.fanins, g.delay)
        mutated.set_outputs(net.outputs)
        if net.gate(out).gtype.value in ("AND", "OR"):
            # AND<->OR differ unless the fanins are equal functions
            same = equivalent(net, mutated)
            if same:
                # legitimately equivalent (e.g. identical fanins); verify
                from repro.sim.vectors import random_vectors

                for vec in random_vectors(net.inputs, 16, seed=seed):
                    assert net.output_values(vec) == mutated.output_values(vec)
