"""Concurrent AnalysisSession use: the compiled-executor cache under
threads.

The server leans on one :class:`~repro.kernel.design.CompiledDesign`
handle being safely shareable across request threads — the per-backend
executor cache and the net-index caches are populated lazily, so the
interesting case is many threads racing those caches cold.  Every
concurrent result must be bit-identical to the single-threaded
reference (floats compared with ``==``, not a tolerance).
"""

import threading

import pytest

from repro.api import AnalysisSession
from repro.circuits.adders import cascade_adder

N_THREADS = 8
ROUNDS = 12


@pytest.fixture(scope="module")
def session():
    return AnalysisSession(cascade_adder(8, 2))


@pytest.fixture(scope="module")
def scenarios(session):
    inputs = session.design.inputs
    return [
        {name: float(i + j) for j, name in enumerate(inputs[: i + 1])}
        for i in range(6)
    ]


def _hammer(worker, n_threads=N_THREADS):
    """Run ``worker(i)`` on N threads; re-raise the first failure."""
    errors = []

    def wrapped(i):
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - collected, re-raised
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    if errors:
        raise errors[0]


class TestCompiledHandleThreadSafety:
    def test_propagate_rows_bit_identical_across_threads(
        self, session, scenarios
    ):
        handle = session.compile()
        reference = handle.propagate_rows(scenarios)

        def worker(i):
            # vary batch_size per thread: each size exercises its own
            # executor-cache entry, and the first call per size races
            # the cache fill against the other threads
            batch = [1, 2, 3, 256][i % 4]
            for _ in range(ROUNDS):
                rows = handle.propagate_rows(scenarios, batch_size=batch)
                assert rows == reference

        _hammer(worker)

    def test_propagate_dicts_and_nets_filter_across_threads(
        self, session, scenarios
    ):
        handle = session.compile()
        full = handle.propagate(scenarios)
        outputs_only = handle.propagate(scenarios, nets=handle.outputs)

        def worker(i):
            for _ in range(ROUNDS):
                if i % 2:
                    assert handle.propagate(scenarios) == full
                else:
                    got = handle.propagate(scenarios, nets=handle.outputs)
                    assert got == outputs_only

        _hammer(worker)

    def test_concurrent_compile_calls_agree(self):
        # cold sessions compiled from many threads at once: every handle
        # must produce the same answers as a serially-compiled one
        design = cascade_adder(4, 2)
        reference = AnalysisSession(design).compile().propagate_rows([{}])
        session = AnalysisSession(design)

        def worker(_i):
            handle = session.compile()
            assert handle.propagate_rows([{}]) == reference

        _hammer(worker)

    def test_analyze_batch_matches_handle(self, session, scenarios):
        from repro.scenarios import ScenarioSet

        result = session.analyze_batch(ScenarioSet.of(*scenarios))
        handle = session.compile()
        rows = handle.propagate_rows(scenarios, nets=handle.outputs)
        assert len(result) == len(rows)
        for per_scenario, row in zip(result, rows):
            assert per_scenario.delay == max(row)
