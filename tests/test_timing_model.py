"""Tests for timing tuples, dominance pruning, and min-max propagation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timing_model import (
    NEG_INF,
    POS_INF,
    TimingModel,
    prune_dominated,
)
from repro.errors import AnalysisError


class TestPruneDominated:
    def test_keeps_incomparable(self):
        tuples = [(1.0, 5.0), (5.0, 1.0)]
        assert set(prune_dominated(tuples)) == set(tuples)

    def test_drops_dominated(self):
        kept = prune_dominated([(1.0, 1.0), (2.0, 2.0)])
        assert kept == ((1.0, 1.0),)

    def test_equal_tuples_collapse(self):
        kept = prune_dominated([(1.0, 2.0), (1.0, 2.0)])
        assert kept == ((1.0, 2.0),)

    def test_neg_inf_dominates(self):
        kept = prune_dominated([(NEG_INF, 3.0), (2.0, 3.0)])
        assert kept == ((NEG_INF, 3.0),)

    def test_partial_domination_chain(self):
        kept = prune_dominated([(3.0, 3.0), (2.0, 4.0), (1.0, 5.0), (3.0, 4.0)])
        assert set(kept) == {(3.0, 3.0), (2.0, 4.0), (1.0, 5.0)}

    def test_survivors_keep_input_order(self):
        tuples = [(5.0, 1.0), (1.0, 5.0), (3.0, 3.0), (6.0, 6.0)]
        assert prune_dominated(tuples) == ((5.0, 1.0), (1.0, 5.0), (3.0, 3.0))


def _dominates(a, b):
    return a != b and all(x <= y for x, y in zip(a, b))


@st.composite
def tuple_lists(draw):
    arity = draw(st.integers(1, 4))
    entries = st.sampled_from([NEG_INF, 0.0, 1.0, 2.0, 3.0])
    return draw(
        st.lists(
            st.tuples(*([entries] * arity)), min_size=0, max_size=14
        )
    )


class TestPruneDominatedProperties:
    """The satellite properties: idempotent, order-independent, minimal."""

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists())
    def test_idempotent(self, tuples):
        once = prune_dominated(tuples)
        assert prune_dominated(once) == once

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists(), st.randoms(use_true_random=False))
    def test_order_independent_as_a_set(self, tuples, rng):
        shuffled = list(tuples)
        rng.shuffle(shuffled)
        assert set(prune_dominated(shuffled)) == set(prune_dominated(tuples))

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists())
    def test_kept_are_minimal_and_cover_dropped(self, tuples):
        kept = prune_dominated(tuples)
        for a in kept:
            assert not any(_dominates(b, a) for b in kept)
        for t in tuples:
            if t not in kept:
                assert any(_dominates(k, t) for k in kept)

    @settings(max_examples=60, deadline=None)
    @given(tuple_lists())
    def test_matches_quadratic_reference(self, tuples):
        unique = list(dict.fromkeys(tuples))
        reference = {
            c for c in unique if not any(_dominates(o, c) for o in unique)
        }
        assert set(prune_dominated(tuples)) == reference


class TestTimingModel:
    def test_requires_tuples(self):
        with pytest.raises(AnalysisError):
            TimingModel("z", ("a",), ())

    def test_arity_checked(self):
        with pytest.raises(AnalysisError):
            TimingModel("z", ("a", "b"), ((1.0,),))

    def test_topological_factory(self):
        model = TimingModel.topological("z", ["a", "b", "c"], {"a": 3.0})
        assert model.tuples == ((3.0, NEG_INF, NEG_INF),)

    def test_stable_time_single_tuple(self):
        model = TimingModel("z", ("a", "b"), ((2.0, 5.0),))
        assert model.stable_time({"a": 0.0, "b": 0.0}) == 5.0
        assert model.stable_time({"a": 10.0, "b": 0.0}) == 12.0

    def test_stable_time_min_over_tuples(self):
        # two incomparable tuples: either input alone suffices
        model = TimingModel("z", ("a", "b"), ((1.0, NEG_INF), (NEG_INF, 1.0)))
        assert model.stable_time({"a": 0.0, "b": 100.0}) == 1.0
        assert model.stable_time({"a": 100.0, "b": 0.0}) == 1.0

    def test_stable_time_unconstrained_inputs_ignored(self):
        model = TimingModel("z", ("a", "b"), ((2.0, NEG_INF),))
        assert model.stable_time({"a": 1.0, "b": 1e9}) == 3.0

    def test_stable_time_default_arrival_zero(self):
        model = TimingModel("z", ("a",), ((4.0,),))
        assert model.stable_time({}) == 4.0

    def test_all_unconstrained_tuple(self):
        model = TimingModel("z", ("a",), ((NEG_INF,),))
        assert model.stable_time({"a": 7.0}) == NEG_INF

    def test_delay_from(self):
        model = TimingModel("z", ("a", "b"), ((2.0, 5.0), (3.0, 1.0)))
        assert model.delay_from("a") == 3.0
        assert model.delay_from("b") == 5.0
        with pytest.raises(AnalysisError):
            model.delay_from("ghost")

    def test_required_tuples(self):
        model = TimingModel("z", ("a", "b"), ((2.0, NEG_INF),))
        assert model.required_tuples(0.0) == ((-2.0, POS_INF),)
        assert model.required_tuples(10.0) == ((8.0, POS_INF),)

    def test_serialization_roundtrip(self):
        model = TimingModel("z", ("a", "b"), ((2.0, NEG_INF), (1.0, 3.0)))
        again = TimingModel.from_dict(model.to_dict())
        assert again == model

    def test_pruned(self):
        model = TimingModel("z", ("a",), ((2.0,), (3.0,)))
        assert model.pruned().tuples == ((2.0,),)


class TestInputSlack:
    def test_paper_fig5_slack(self):
        model = TimingModel(
            "c_out",
            ("c_in", "a0", "b0", "a1", "b1"),
            ((2.0, 8.0, 8.0, 6.0, 6.0),),
        )
        arr = {"c_in": 5.0}
        assert model.stable_time(arr) == 8.0
        assert model.input_slack(arr, "c_in") == 1.0
        assert model.input_slack(arr, "a0") == 0.0

    def test_unconstrained_input_infinite_slack(self):
        model = TimingModel("z", ("a", "b"), ((2.0, NEG_INF),))
        assert model.input_slack({}, "b") == POS_INF

    def test_multi_tuple_slack_uses_best_certifying_tuple(self):
        # tuple 1 makes 'a' critical at T0=5; tuple 2 ignores 'a' but can
        # only certify 8 > T0, so it cannot grant 'a' any slack: any delay
        # on 'a' moves the stable time.
        model = TimingModel("z", ("a", "b"), ((5.0, 1.0), (NEG_INF, 8.0)))
        arr = {"a": 0.0, "b": 0.0}
        assert model.stable_time(arr) == 5.0
        assert model.input_slack(arr, "a") == 0.0
        # but if the second tuple certifies T0 itself, 'a' is free forever
        model2 = TimingModel("z", ("a", "b"), ((5.0, 1.0), (NEG_INF, 5.0)))
        assert model2.stable_time(arr) == 5.0
        assert model2.input_slack(arr, "a") == POS_INF

    def test_unknown_input_raises(self):
        model = TimingModel("z", ("a",), ((1.0,),))
        with pytest.raises(AnalysisError):
            model.input_slack({}, "zz")
