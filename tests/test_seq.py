"""Tests for the sequential-circuit extension."""

import pytest

from repro.errors import NetlistError
from repro.netlist.network import Network
from repro.seq.circuit import Flop, SequentialCircuit
from repro.seq.generators import accumulator, shift_register


def toggle_circuit() -> SequentialCircuit:
    """Single flop toggling through an inverter."""
    core = Network("toggle")
    core.add_input("q0")
    core.add_gate("d0", "NOT", ["q0"], 1.0)
    core.set_outputs(["d0"])
    return SequentialCircuit(core, [Flop("ff0", d="d0", q="q0")])


class TestConstruction:
    def test_q_must_be_core_input(self):
        core = Network("c")
        core.add_input("a")
        core.add_gate("d", "NOT", ["a"], 1.0)
        core.set_outputs(["d"])
        with pytest.raises(NetlistError):
            SequentialCircuit(core, [Flop("f", d="d", q="d")])

    def test_d_must_exist(self):
        core = Network("c")
        core.add_input("q")
        core.add_gate("d", "NOT", ["q"], 1.0)
        core.set_outputs(["d"])
        with pytest.raises(NetlistError):
            SequentialCircuit(core, [Flop("f", d="ghost", q="q")])

    def test_duplicate_q_rejected(self):
        core = Network("c")
        core.add_input("q")
        core.add_gate("d", "NOT", ["q"], 1.0)
        core.set_outputs(["d"])
        with pytest.raises(NetlistError):
            SequentialCircuit(
                core, [Flop("f1", d="d", q="q"), Flop("f2", d="d", q="q")]
            )

    def test_pin_partition(self):
        seq = accumulator(4)
        assert "in0" in seq.primary_inputs
        assert "acc0" not in seq.primary_inputs
        assert "c4" in seq.primary_outputs
        assert "s0" not in seq.primary_outputs
        assert set(seq.endpoints()) == {
            "s0", "s1", "s2", "s3", "c4"
        }


class TestClockPeriod:
    def test_toggle_period(self):
        seq = toggle_circuit()
        assert seq.min_clock_period() == 1.0
        assert seq.min_clock_period(clk_to_q=0.5, setup=0.25) == 1.75

    def test_functional_beats_topological_on_accumulator(self):
        seq = accumulator(8, 2)
        topo = seq.min_clock_period(functional=False)
        func = seq.min_clock_period(functional=True)
        assert func < topo
        # Table-1 numbers carried over: csa8.2 is 16 functional, 26 topo
        assert func == 16.0
        assert topo == 26.0

    def test_clk_to_q_shifts_register_paths_only(self):
        seq = accumulator(4, 2)
        base = seq.min_clock_period()
        shifted = seq.min_clock_period(clk_to_q=2.0)
        assert base < shifted <= base + 2.0

    def test_input_arrival_constrains(self):
        seq = accumulator(4, 2)
        base = seq.min_clock_period()
        late = seq.min_clock_period(input_arrival={"in0": 20.0})
        assert late > base

    def test_input_arrival_rejects_q_pins(self):
        seq = accumulator(4, 2)
        with pytest.raises(NetlistError):
            seq.min_clock_period(input_arrival={"acc0": 1.0})

    def test_critical_endpoint(self):
        seq = accumulator(8, 2)
        pin, time = seq.critical_endpoint()
        assert time == 16.0
        assert pin == "s7"  # last sum: carry-in of last block + XOR

    def test_shift_register(self):
        seq = shift_register(6, taps=2)
        # critical: feedback XOR chain q -> fb -> d0: 2 units
        assert seq.min_clock_period() == 2.0
        assert seq.min_clock_period(functional=False) == 2.0

    def test_accumulator_functional_correctness(self):
        """One clock tick of the accumulator adds correctly."""
        seq = accumulator(4, 2)
        acc = 5
        addend = 9
        vec = {"c_in": False}
        for i in range(4):
            vec[f"in{i}"] = bool((addend >> i) & 1)
            vec[f"acc{i}"] = bool((acc >> i) & 1)
        values = seq.core.output_values(vec)
        next_acc = sum((1 << i) for i in range(4) if values[f"s{i}"])
        carry = values["c4"]
        assert next_acc + (16 if carry else 0) == acc + addend
