"""The analysis server: registry, coalescer, app routes, HTTP shell."""

import http.client
import json
import threading
import time

import pytest

from repro.circuits.adders import cascade_adder
from repro.errors import ReproError
from repro.parsers.verilog import dumps_verilog
from repro.resilience.policy import Deadline
from repro.server import (
    CoalesceConfig,
    DesignRegistry,
    RequestCoalescer,
    TimingServerApp,
    UnknownDesign,
    content_id,
    start_server,
)


# --------------------------------------------------------------------- helpers
def verilog_source(width, block):
    """Structural-Verilog text for a cascade adder, legally named."""
    design = cascade_adder(width, block)
    design.name = f"csa{width}_{block}"
    return dumps_verilog(design)


def call(app, method, path, payload=None):
    """One app round trip, JSON-decoded when the response is JSON."""
    body = b"" if payload is None else json.dumps(payload).encode()
    status, ctype, out = app.handle(method, path, body)
    doc = json.loads(out) if ctype.startswith("application/json") else out
    return status, doc


@pytest.fixture(scope="module")
def app():
    """One served design (csa4.2, registered as ``csa4_2``)."""
    app = TimingServerApp(coalesce=CoalesceConfig(max_batch=8))
    app.registry.register_design(cascade_adder(4, 2))
    yield app
    app.close()


# -------------------------------------------------------------------- registry
class TestContentId:
    def test_deterministic_short_hex(self):
        a = content_id("module m; endmodule")
        assert a == content_id("module m; endmodule")
        assert len(a) == 12
        int(a, 16)

    def test_distinct_sources_distinct_ids(self):
        assert content_id("x") != content_id("y")


class TestRegistry:
    def test_register_source_is_idempotent(self):
        reg = DesignRegistry()
        source = verilog_source(4, 2)
        first = reg.register_source(source)
        assert reg.register_source(source) is first
        assert len(reg) == 1

    def test_register_design_sanitizes_name(self):
        reg = DesignRegistry()
        design = cascade_adder(4, 2)
        entry = reg.register_design(design)
        assert entry.name == "csa4_2"
        assert design.name == "csa4.2"  # caller's object untouched
        assert reg.get("csa4_2") is entry
        assert reg.get(entry.design_id) is entry

    def test_unknown_design_raises(self):
        reg = DesignRegistry()
        with pytest.raises(UnknownDesign):
            reg.get("nope")

    def test_lru_eviction(self):
        reg = DesignRegistry(max_designs=1)
        first = reg.register_design(cascade_adder(4, 2))
        second = reg.register_design(cascade_adder(8, 2))
        assert len(reg) == 1
        assert reg.get(second.design_id) is second
        with pytest.raises(UnknownDesign):
            reg.get(first.design_id)
        # the evicted entry's coalescer is drained
        outcome = first.coalescer.submit({})
        assert not outcome.ok and outcome.error == "server-closed"

    def test_register_file_rejects_non_verilog(self, tmp_path):
        reg = DesignRegistry()
        f = tmp_path / "x.bench"
        f.write_text("INPUT(a)\n")
        with pytest.raises(ReproError, match="structural Verilog"):
            reg.register_file(f)

    def test_preload_generator_spec(self, tmp_path):
        from repro.cli import preload_design

        reg = DesignRegistry()
        entry = preload_design(reg, "gen:csa4.2")
        assert entry.name == "csa4_2"
        # and a .v file path preloads by content
        f = tmp_path / "adder.v"
        f.write_text(verilog_source(4, 2))
        assert preload_design(reg, str(f)) is entry

    def test_preload_bad_spec_raises(self):
        from repro.cli import preload_design

        with pytest.raises(ReproError):
            preload_design(DesignRegistry(), "gen:unknown")

    def test_flat_source_rejected(self):
        reg = DesignRegistry()
        with pytest.raises(ReproError, match="hierarchical"):
            reg.register_source(
                "module flat(a, z);\n  input a;\n  output z;\n"
                "  not g1(z, a);\nendmodule\n"
            )


# ------------------------------------------------------------------- coalescer
class TestCoalescer:
    def test_solo_request_flushes_immediately(self):
        calls = []

        def evaluate(scenarios):
            calls.append(list(scenarios))
            return [s["v"] * 10 for s in scenarios]

        co = RequestCoalescer(evaluate)
        outcome = co.submit({"v": 3})
        assert outcome.ok and outcome.value == 30
        assert outcome.batch_size == 1
        assert calls == [[{"v": 3}]]
        co.close()

    def test_concurrent_requests_coalesce_into_one_batch(self):
        entered = threading.Event()
        release = threading.Event()
        batches = []

        def evaluate(scenarios):
            batches.append(len(scenarios))
            if len(batches) == 1:
                entered.set()
                assert release.wait(10)
            return [s["v"] for s in scenarios]

        co = RequestCoalescer(evaluate, config=CoalesceConfig(max_batch=8))
        outcomes = {}

        def client(i):
            outcomes[i] = co.submit({"v": i})

        first = threading.Thread(target=client, args=(0,))
        first.start()
        assert entered.wait(10)
        # these queue while the first batch is stuck evaluating...
        rest = [
            threading.Thread(target=client, args=(i,)) for i in (1, 2, 3)
        ]
        for t in rest:
            t.start()
        while co.submitted < 4:
            time.sleep(0.001)
        release.set()
        first.join(10)
        for t in rest:
            t.join(10)
        # ...and flush together as one kernel call
        assert batches == [1, 3]
        assert all(outcomes[i].value == i for i in range(4))
        assert {outcomes[i].batch_size for i in (1, 2, 3)} == {3}
        assert co.coalesced == 3
        co.close()

    def test_max_batch_one_never_coalesces(self):
        co = RequestCoalescer(
            lambda s: [0.0] * len(s), config=CoalesceConfig(max_batch=1)
        )
        threads = [
            threading.Thread(target=co.submit, args=({},))
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert co.coalesced == 0
        assert co.batches == co.submitted == 6
        co.close()

    def test_queued_deadline_rejected_without_evaluation(self):
        entered = threading.Event()
        release = threading.Event()
        seen = []

        def evaluate(scenarios):
            seen.extend(scenarios)
            entered.set()
            assert release.wait(10)
            return [0.0] * len(scenarios)

        co = RequestCoalescer(evaluate)
        slow = threading.Thread(target=co.submit, args=({"id": "a"},))
        slow.start()
        assert entered.wait(10)
        result = {}
        doomed = threading.Thread(
            target=lambda: result.update(
                outcome=co.submit({"id": "b"}, deadline=0.005)
            )
        )
        doomed.start()
        time.sleep(0.05)  # let the deadline lapse while queued
        release.set()
        slow.join(10)
        doomed.join(10)
        outcome = result["outcome"]
        assert not outcome.ok and outcome.error == "deadline-exceeded"
        assert outcome.batch_size == 0  # never reached the kernel
        assert [d.kind for d in outcome.degradations] == ["deadline"]
        assert "queued" in outcome.detail
        assert {s["id"] for s in seen} == {"a"}
        co.close()

    def test_deadline_expiring_during_evaluation_rejects_after(self):
        def evaluate(scenarios):
            time.sleep(0.05)
            return [0.0] * len(scenarios)

        co = RequestCoalescer(evaluate)
        outcome = co.submit({}, deadline=Deadline(0.01))
        assert not outcome.ok and outcome.error == "deadline-exceeded"
        assert "evaluated" in outcome.detail
        co.close()

    def test_evaluation_error_fails_the_batch(self):
        def evaluate(scenarios):
            raise RuntimeError("kernel exploded")

        co = RequestCoalescer(evaluate)
        outcome = co.submit({})
        assert not outcome.ok and outcome.error == "evaluation-error"
        assert "RuntimeError" in outcome.detail
        assert "kernel exploded" in outcome.detail
        co.close()

    def test_result_count_mismatch_is_an_error(self):
        co = RequestCoalescer(lambda s: [])
        outcome = co.submit({})
        assert not outcome.ok and outcome.error == "evaluation-error"
        assert "0 results" in outcome.detail
        co.close()

    def test_submit_after_close_is_rejected(self):
        co = RequestCoalescer(lambda s: [0.0] * len(s))
        co.close()
        outcome = co.submit({})
        assert not outcome.ok and outcome.error == "server-closed"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoalesceConfig(max_batch=0)
        with pytest.raises(ValueError):
            CoalesceConfig(max_wait=-1.0)


# ------------------------------------------------------------------ app routes
class TestAppRoutes:
    def test_healthz(self, app):
        status, doc = call(app, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["designs"] >= 1
        assert doc["uptime_seconds"] >= 0

    def test_designs_listing(self, app):
        status, doc = call(app, "GET", "/designs")
        assert status == 200
        names = [d["name"] for d in doc["designs"]]
        assert "csa4_2" in names

    def test_register_via_post(self, app):
        source = verilog_source(8, 2)
        status, doc = call(app, "POST", "/designs", {"source": source})
        assert status == 200
        assert doc["design"] == content_id(source)
        # re-registering identical source lands on the same entry
        status, again = call(app, "POST", "/designs", {"source": source})
        assert status == 200 and again["design"] == doc["design"]

    def test_register_requires_exactly_one_input(self, app):
        status, doc = call(app, "POST", "/designs", {})
        assert status == 400
        assert "exactly one" in doc["error"]["message"]
        status, _ = call(
            app, "POST", "/designs", {"source": "x", "path": "y"}
        )
        assert status == 400

    def test_analyze_matches_direct_propagation(self, app):
        arrival = {"a0": 2.0, "b1": 1.5}
        entry = app.registry.get("csa4_2")
        (row,) = entry.handle.propagate_rows(
            [arrival], nets=entry.handle.outputs
        )
        status, doc = call(
            app, "POST", "/analyze", {"design": "csa4_2", "arrival": arrival}
        )
        assert status == 200
        assert doc["delay"] == max(row)
        assert doc["design"] == entry.design_id
        assert doc["batch_size"] >= 1

    def test_analyze_include_outputs(self, app):
        status, doc = call(
            app,
            "POST",
            "/analyze",
            {"design": "csa4_2", "arrival": {}, "include": ["outputs"]},
        )
        assert status == 200
        entry = app.registry.get("csa4_2")
        assert set(doc["outputs"]) == set(entry.handle.outputs)
        assert doc["delay"] == max(doc["outputs"].values())

    def test_analyze_include_nets_agrees_with_coalesced_path(self, app):
        arrival = {"a0": 2.0}
        status, lean = call(
            app, "POST", "/analyze", {"design": "csa4_2", "arrival": arrival}
        )
        status2, full = call(
            app,
            "POST",
            "/analyze",
            {"design": "csa4_2", "arrival": arrival, "include": ["nets"]},
        )
        assert status == status2 == 200
        # the direct (all-nets) path and the coalesced (row) path agree
        assert full["delay"] == lean["delay"]
        assert full["nets"]["a0"] == 2.0

    def test_analyze_unknown_design_404(self, app):
        status, doc = call(
            app, "POST", "/analyze", {"design": "ghost", "arrival": {}}
        )
        assert status == 404
        assert doc["error"]["code"] == "unknown-design"

    def test_analyze_field_validation(self, app):
        cases = [
            ({}, "missing 'design'"),
            ({"design": "csa4_2", "arrival": ["x"]}, "'arrival'"),
            ({"design": "csa4_2", "arrival": {"zz": 1}}, "unknown input"),
            ({"design": "csa4_2", "arrival": {"a0": "x"}}, "numbers"),
            ({"design": "csa4_2", "include": ["magic"]}, "include"),
            ({"design": "csa4_2", "deadline": 0}, "deadline"),
            ({"design": "csa4_2", "deadline": "soon"}, "deadline"),
        ]
        for payload, needle in cases:
            status, doc = call(app, "POST", "/analyze", payload)
            assert status == 400, payload
            assert needle in doc["error"]["message"]

    def test_malformed_bodies(self, app):
        status, _, _ = app.handle("POST", "/analyze", b"{not json")
        assert status == 400
        status, _, out = app.handle("POST", "/analyze", b"[1, 2]")
        assert status == 400
        assert b"JSON object" in out

    def test_unknown_endpoint_and_method(self, app):
        status, doc = call(app, "GET", "/nope")
        assert status == 404 and doc["error"]["code"] == "not-found"
        status, doc = call(app, "GET", "/analyze")
        assert status == 405
        assert doc["error"]["code"] == "method-not-allowed"

    def test_batch_matches_per_scenario_analyze(self, app):
        scenarios = [{}, {"a0": 2.0}, {"b0": 5.0, "a1": 1.0}]
        status, doc = call(
            app,
            "POST",
            "/batch",
            {"design": "csa4_2", "scenarios": scenarios},
        )
        assert status == 200
        assert doc["count"] == 3 and len(doc["delays"]) == 3
        assert doc["delay"] == max(doc["delays"])
        for scenario, delay in zip(scenarios, doc["delays"]):
            _, single = call(
                app,
                "POST",
                "/analyze",
                {"design": "csa4_2", "arrival": scenario},
            )
            assert single["delay"] == delay

    def test_batch_include_outputs(self, app):
        status, doc = call(
            app,
            "POST",
            "/batch",
            {
                "design": "csa4_2",
                "scenarios": [{}, {"a0": 1.0}],
                "include": ["outputs"],
            },
        )
        assert status == 200
        assert len(doc["scenarios"]) == 2
        for per in doc["scenarios"]:
            assert per["delay"] == max(per["outputs"].values())

    def test_batch_requires_scenarios(self, app):
        status, doc = call(app, "POST", "/batch", {"design": "csa4_2"})
        assert status == 400
        assert "scenarios" in doc["error"]["message"]

    def test_forensics(self, app):
        status, doc = call(
            app, "POST", "/forensics", {"design": "csa4_2", "arrival": {}}
        )
        assert status == 200
        assert doc["design"] == app.registry.get("csa4_2").design_id
        assert doc["trace_id"].startswith("req-")

    def test_metrics_exposition(self, app):
        call(app, "GET", "/healthz")
        status, _, out = app.handle("GET", "/metrics")
        assert status == 200
        text = out.decode()
        assert "server_requests" in text
        assert "# TYPE" in text

    def test_trace_chrome_format(self, app):
        status, doc = call(app, "GET", "/trace")
        assert status == 200
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_trailing_slash_and_query_string_normalized(self, app):
        status, _ = call(app, "GET", "/healthz/")
        assert status == 200
        status, _ = call(app, "GET", "/healthz?verbose=1")
        assert status == 200


class TestDeadline504:
    def test_expired_deadline_is_structured_504(self, app):
        status, doc = call(
            app,
            "POST",
            "/analyze",
            {"design": "csa4_2", "arrival": {}, "deadline": 1e-9},
        )
        assert status == 504
        assert doc["error"]["code"] == "deadline-exceeded"
        assert [d["kind"] for d in doc["degradations"]] == ["deadline"]
        assert doc["degradations"][0]["fallback"]

    def test_concurrent_requests_unaffected_by_a_504(self, app):
        results = {}

        def normal(i):
            results[i] = call(
                app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}}
            )

        def doomed():
            results["doomed"] = call(
                app,
                "POST",
                "/analyze",
                {"design": "csa4_2", "arrival": {}, "deadline": 1e-9},
            )

        threads = [threading.Thread(target=normal, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=doomed))
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        status, doc = results["doomed"]
        assert status == 504
        delays = set()
        for i in range(4):
            status, doc = results[i]
            assert status == 200
            delays.add(doc["delay"])
        assert len(delays) == 1  # all served the same, correct answer


# ------------------------------------------------------------------ HTTP shell
@pytest.fixture()
def http_app():
    """A private app per HTTP test: ``server.shutdown()`` closes its
    app (drains the registry), so these cannot share the module app."""
    app = TimingServerApp(coalesce=CoalesceConfig(max_batch=8))
    app.registry.register_design(cascade_adder(4, 2))
    yield app
    app.close()


class TestHTTPServer:
    def test_smoke_over_real_sockets(self, http_app):
        server, thread = start_server(http_app, port=0)
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read())["status"] == "ok"

            # keep-alive: same connection serves the POST
            body = json.dumps({"design": "csa4_2", "arrival": {}})
            conn.request(
                "POST",
                "/analyze",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read())["delay"] > 0

            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.getheader("Content-Type", "").startswith("text/plain")
            assert b"server_requests" in resp.read()

            conn.request("GET", "/definitely-not-a-route")
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
        finally:
            conn.close()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_garbage_request_line_gets_400(self, http_app):
        import socket

        server, thread = start_server(http_app, port=0)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                head = sock.recv(4096)
            assert head.startswith(b"HTTP/1.1 400")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    @pytest.mark.slow
    def test_soak_concurrent_clients_identical_answers(self, http_app):
        server, thread = start_server(http_app, port=0)
        entry = http_app.registry.get("csa4_2")
        before = entry.coalescer.coalesced
        delays = []
        errors = []
        lock = threading.Lock()

        def client():
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            body = json.dumps({"design": "csa4_2", "arrival": {"a0": 1.0}})
            try:
                for _ in range(25):
                    conn.request(
                        "POST",
                        "/analyze",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    resp = conn.getresponse()
                    doc = json.loads(resp.read())
                    with lock:
                        if resp.status != 200:
                            errors.append(doc)
                        else:
                            delays.append(doc["delay"])
            finally:
                conn.close()

        clients = [threading.Thread(target=client) for _ in range(8)]
        try:
            for t in clients:
                t.start()
            for t in clients:
                t.join(60)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        assert not errors
        assert len(delays) == 8 * 25
        assert len(set(delays)) == 1  # coalesced batches are bit-identical
        # read the counter off the held entry: shutdown() has already
        # drained the registry by the time we get here
        assert entry.coalescer.coalesced > before
