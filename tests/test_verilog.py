"""Tests for the structural Verilog reader/writer."""

import pytest

from repro.circuits.adders import carry_skip_block
from repro.errors import ParseError
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.netlist.ops import networks_equivalent_on
from repro.parsers.verilog import dumps_verilog, loads_verilog
from repro.sim.vectors import all_vectors, random_vectors

FLAT_EXAMPLE = """
// a full adder
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire p, g, t;
  xor x1 (p, a, b);
  and a1 (g, a, b);
  xor x2 (sum, p, cin);
  and a2 (t, p, cin);
  or  o1 (cout, g, t);
endmodule
"""

HIER_EXAMPLE = """
module inv (i, o);
  input i;
  output o;
  not n1 (o, i);
endmodule

/* two inverters in series */
module top (x, y);
  input x;
  output y;
  wire mid;
  inv u1 (.i(x), .o(mid));
  inv u2 (.i(mid), .o(y));
endmodule
"""


class TestFlatRead:
    def test_full_adder_parses_and_works(self):
        net = loads_verilog(FLAT_EXAMPLE)
        assert isinstance(net, Network)
        assert net.name == "fa"
        assert net.inputs == ("a", "b", "cin")
        for vec in all_vectors(net.inputs):
            total = sum(vec.values())
            values = net.output_values(vec)
            assert values["sum"] == bool(total & 1)
            assert values["cout"] == bool(total >> 1)

    def test_out_of_order_gates(self):
        text = """
        module m (a, z);
          input a; output z;
          wire t;
          not n2 (z, t);
          not n1 (t, a);
        endmodule
        """
        net = loads_verilog(text)
        assert net.output_values({"a": True}) == {"z": True}

    def test_comments_stripped(self):
        text = (
            "module m (a, z); // ports\n  input a; output z;\n"
            "  /* body */ buf b1 (z, a);\nendmodule\n"
        )
        net = loads_verilog(text)
        assert net.output_values({"a": False}) == {"z": False}


class TestHierRead:
    def test_two_level_design(self):
        design = loads_verilog(HIER_EXAMPLE)
        assert isinstance(design, HierDesign)
        assert design.instance_order() == ["u1", "u2"]
        flat = design.flatten()
        assert flat.output_values({"x": True}) == {"y": True}

    def test_positional_connections(self):
        text = HIER_EXAMPLE.replace(
            "inv u1 (.i(x), .o(mid));", "inv u1 (x, mid);"
        )
        design = loads_verilog(text)
        assert design.flatten().output_values({"x": False}) == {"y": False}


class TestRejections:
    @pytest.mark.parametrize(
        "snippet,match",
        [
            ("module m (a); input a; assign b = a; endmodule", "assign"),
            ("module m (a); input a; reg r; endmodule", "reg"),
            ("module m (a); input [3:0] a; endmodule", "vector"),
            ("module m (a, z); input a; output z; endmodule", "never driven"),
            ("no modules here", "no module"),
            (
                "module m (a, z); input a; output z;\n"
                "  frobnicate f1 (z, a);\nendmodule",
                "unknown (primitive|module)",
            ),
            (
                "module m (a, z); input a; output z;\n"
                "  not n1 (z, ghost);\nendmodule",
                "undefined",
            ),
            (
                "module m (zz); output z; endmodule",
                "no input/output declaration",
            ),
        ],
    )
    def test_bad_inputs(self, snippet, match):
        with pytest.raises(ParseError, match=match):
            loads_verilog(snippet)

    def test_mixed_connection_styles_rejected(self):
        text = HIER_EXAMPLE.replace(
            "inv u1 (.i(x), .o(mid));", "inv u1 (.i(x), mid);"
        )
        with pytest.raises(ParseError, match="mixes"):
            loads_verilog(text)

    def test_nested_hierarchy_rejected(self):
        text = """
        module leaf (a, z); input a; output z; buf b (z, a); endmodule
        module mid (a, z); input a; output z; leaf l (.a(a), .z(z)); endmodule
        module top (a, z); input a; output z; mid m (.a(a), .z(z)); endmodule
        """
        with pytest.raises(ParseError, match="depth-1|nests"):
            loads_verilog(text)

    def test_top_glue_logic_rejected(self):
        text = """
        module leaf (a, z); input a; output z; buf b (z, a); endmodule
        module top (a, z); input a; output z; wire t;
          leaf l (.a(a), .z(t));
          not n1 (z, t);
        endmodule
        """
        with pytest.raises(ParseError, match="glue"):
            loads_verilog(text)


class TestWriter:
    def test_flat_roundtrip(self):
        original = loads_verilog(FLAT_EXAMPLE)
        again = loads_verilog(dumps_verilog(original))
        assert networks_equivalent_on(
            original, again, list(all_vectors(original.inputs))
        )

    def test_mux_decomposition_preserves_function(self):
        block = carry_skip_block(2)
        again = loads_verilog(dumps_verilog(block))
        assert networks_equivalent_on(
            block, again, random_vectors(block.inputs, 32, seed=3)
        )

    def test_hier_roundtrip(self):
        design = loads_verilog(HIER_EXAMPLE)
        again = loads_verilog(dumps_verilog(design))
        assert isinstance(again, HierDesign)
        vectors = [{"x": False}, {"x": True}]
        assert networks_equivalent_on(
            design.flatten(), again.flatten(), vectors
        )

    def test_illegal_identifier_rejected(self):
        net = Network("bad.name")
        net.add_input("a")
        net.add_gate("z", "BUF", ["a"])
        net.set_outputs(["z"])
        with pytest.raises(ParseError, match="identifier"):
            dumps_verilog(net)

    def test_constant_rejected(self):
        net = Network("k")
        net.add_input("a")
        net.add_gate("one", "CONST1", ())
        net.add_gate("z", "AND", ["a", "one"])
        net.set_outputs(["z"])
        with pytest.raises(ParseError, match="constant"):
            dumps_verilog(net)
