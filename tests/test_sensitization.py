"""Tests for the sensitization-criteria ladder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.random_logic import random_network
from repro.core.sensitization import (
    cosensitization_delay,
    delay_by_criterion,
    static_sensitization_delay,
)
from repro.core.xbd0 import functional_delays
from repro.errors import AnalysisError
from repro.netlist.network import Network
from repro.sta.topological import arrival_times


def classic_underapprox_circuit() -> Network:
    """The textbook case where static sensitization is optimistic.

    f = a·c + b·¬c with a=b=1: flipping either AND's output alone doesn't
    flip f, so no path is statically sensitized under some vectors even
    though real events do propagate.
    """
    net = Network("under")
    a, b, c = net.add_inputs(["a", "b", "c"])
    nc = net.add_gate("nc", "NOT", [c], 1.0)
    t1 = net.add_gate("t1", "AND", [a, c], 1.0)
    t2 = net.add_gate("t2", "AND", [b, nc], 1.0)
    net.add_gate("f", "OR", [t1, t2], 1.0)
    net.set_outputs(["f"])
    return net


class TestKnownCircuits:
    def test_static_underapproximates_on_classic(self):
        net = classic_underapprox_circuit()
        static = static_sensitization_delay(net, "f")
        xbd0 = functional_delays(net)["f"]
        topo = arrival_times(net)["f"]
        assert static <= xbd0 <= topo
        # the classic result: the longest path (through the inverter, 3)
        # is statically unsensitizable only vector-by-vector; XBD0 keeps it
        assert xbd0 == 3.0

    def test_cosens_at_least_xbd0(self):
        net = classic_underapprox_circuit()
        cosens = cosensitization_delay(net, "f")
        xbd0 = functional_delays(net)["f"]
        assert cosens >= xbd0

    def test_and_gate_all_criteria_agree(self, and2):
        for criterion in ("topological", "static", "cosens", "xbd0"):
            assert delay_by_criterion(and2, "z", criterion) == 1.0


class TestLadder:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_static_le_xbd0_le_cosens_le_topo(self, seed):
        net = random_network(5, 14, seed=seed, num_outputs=1)
        out = net.outputs[0]
        static = static_sensitization_delay(net, out)
        xbd0 = functional_delays(net)[out]
        cosens = cosensitization_delay(net, out)
        topo = arrival_times(net)[out]
        assert static <= xbd0 + 1e-9
        assert xbd0 <= cosens + 1e-9
        assert cosens <= topo + 1e-9

    def test_arrival_times_respected(self):
        net = classic_underapprox_circuit()
        arr = {"a": 5.0}
        for criterion in ("static", "cosens", "xbd0"):
            base = delay_by_criterion(net, "f", criterion)
            late = delay_by_criterion(net, "f", criterion, arrival=arr)
            assert late >= base  # delaying an input never helps


class TestErrors:
    def test_unknown_criterion(self, and2):
        with pytest.raises(AnalysisError):
            delay_by_criterion(and2, "z", "psychic")

    def test_support_cap(self):
        net = random_network(20, 30, seed=0, num_outputs=1)
        out = net.outputs[0]
        if len(net.support(out)) > 6:
            with pytest.raises(AnalysisError):
                static_sensitization_delay(net, out, max_support=6)
