"""Grand integration: every analyzer, one circuit family, one ordering.

For random hierarchical designs under random arrival conditions, the full
analyzer stack must line up:

    flat XBD0  ≤  conditional (any vector)  — per-vector never exceeds worst
    flat XBD0  ≤  footnote-12 per-instance  ≤  two-step hierarchical
    two-step   ==  composed multi-level models (same algebra)
    demand-driven and two-step both within [flat, topological]
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.conditional import ConditionalAnalyzer
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.core.multilevel import compose_design_models, evaluate_composed
from repro.core.subflat import SubcircuitFlatAnalyzer
from repro.core.xbd0 import functional_delays
from repro.sim.vectors import random_vectors
from repro.sta.topological import arrival_times


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000), st.data())
def test_analyzer_stack_ordering(seed, data):
    net = random_network(6, 20, seed=seed, num_outputs=2)
    try:
        design = cascade_bipartition(net)
    except Exception:
        return
    arrival = {
        x: float(data.draw(st.integers(0, 3))) for x in design.inputs
    }
    flat = design.flatten()
    topo = max(arrival_times(flat, arrival)[o] for o in flat.outputs)
    exact = max(functional_delays(flat, arrival).values())

    two_step = HierarchicalAnalyzer(design).analyze(arrival).delay
    demand = DemandDrivenAnalyzer(design).analyze(arrival).delay
    subflat = SubcircuitFlatAnalyzer(design).analyze(arrival).delay
    composed = max(
        evaluate_composed(compose_design_models(design), arrival)[o]
        for o in design.outputs
    )

    for estimate in (two_step, demand, subflat, composed):
        assert exact <= estimate + 1e-9
        assert estimate <= topo + 1e-9
    assert subflat <= two_step + 1e-9
    assert composed == pytest.approx(two_step)

    conditional = ConditionalAnalyzer(design)
    for vec in random_vectors(design.inputs, 4, seed=seed):
        per_vector = conditional.analyze(vec, arrival).delay
        assert per_vector <= exact + 1e-9


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 10_000))
def test_conditional_worst_case_closes_the_loop(seed):
    net = random_network(5, 14, seed=seed, num_outputs=2)
    try:
        design = cascade_bipartition(net)
    except Exception:
        return
    flat = design.flatten()
    exact = max(functional_delays(flat).values())
    worst, witness = ConditionalAnalyzer(design).worst_case_by_enumeration()
    assert worst == pytest.approx(exact)
    assert ConditionalAnalyzer(design).analyze(witness).delay == pytest.approx(
        worst
    )
