"""Tests for input timing budgets (the [4] application)."""

import pytest

from repro.circuits.adders import carry_skip_block
from repro.core.budget import input_budgets
from repro.core.timing_model import POS_INF
from repro.core.xbd0 import StabilityAnalyzer
from repro.errors import AnalysisError


class TestCarrySkipBudget:
    def test_cout_only_budget(self, csa_block2):
        budget = input_budgets(csa_block2, {"c_out": 8.0})
        assert budget.inputs == csa_block2.inputs
        # functional: c_in may arrive at 6 (8 - effective 2)
        assert budget.tuples == ((6.0, 0.0, 0.0, 2.0, 2.0),)
        # topological: c_in must arrive by 2 (8 - path 6)
        assert budget.topological == (2.0, 0.0, 0.0, 2.0, 2.0)
        assert budget.slack_gain()["c_in"] == 4.0
        assert budget.slack_gain()["a0"] == 0.0

    def test_all_outputs_budget(self, csa_block2):
        budget = input_budgets(
            csa_block2, {"s0": 10.0, "s1": 10.0, "c_out": 10.0}
        )
        (tup,) = budget.tuples
        by_name = dict(zip(budget.inputs, tup))
        # c_in: min(10-2 via s0, 10-4 via s1, 10-2 via c_out) = 6
        assert by_name["c_in"] == 6.0
        # a0: min(10-4, 10-6, 10-8) = 2
        assert by_name["a0"] == 2.0

    def test_budget_tuples_are_valid(self, csa_block2):
        """Arrivals at the budget keep every output inside its deadline."""
        required = {"s0": 9.0, "s1": 11.0, "c_out": 9.0}
        budget = input_budgets(csa_block2, required)
        for tup in budget.tuples:
            arrival = {
                x: (0.0 if v == POS_INF else v)
                for x, v in zip(budget.inputs, tup)
            }
            analyzer = StabilityAnalyzer(csa_block2, arrival)
            for out, deadline in required.items():
                assert analyzer.stable_at(out, deadline), (tup, out)

    def test_budget_never_tighter_than_topological(self, csa_block2):
        budget = input_budgets(csa_block2, {"c_out": 8.0, "s1": 8.0})
        for tup in budget.tuples:
            assert all(
                v >= base - 1e-9
                for v, base in zip(tup, budget.topological)
            )

    def test_unconstrained_outputs_do_not_constrain(self, csa_block2):
        budget = input_budgets(csa_block2, {"s0": 6.0})
        by_name = dict(zip(budget.inputs, budget.tuples[0]))
        # a1/b1 do not feed s0 at all
        assert by_name["a1"] == POS_INF
        assert by_name["b1"] == POS_INF

    def test_models_reuse(self, csa_block2):
        from repro.core.required import characterize_network

        models = characterize_network(csa_block2)
        a = input_budgets(csa_block2, {"c_out": 8.0}, models=models)
        b = input_budgets(csa_block2, {"c_out": 8.0})
        assert a.tuples == b.tuples

    def test_errors(self, csa_block2):
        with pytest.raises(AnalysisError):
            input_budgets(csa_block2, {})
        with pytest.raises(AnalysisError):
            input_budgets(csa_block2, {"ghost": 1.0})
