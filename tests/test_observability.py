"""Production observability: trace context, thread-safe metrics, the
flight recorder, SLO burn rates, and the sampling profiler —
unit-level and end-to-end through the server."""

import io
import json
import pickle
import threading
import time

import pytest

from repro.circuits.adders import cascade_adder
from repro.obs import (
    BUCKET_BOUNDS,
    FlightRecord,
    FlightRecorder,
    Metrics,
    NULL_TRACER,
    RingBufferSink,
    SamplingProfiler,
    SloObjective,
    SloTracker,
    Tracer,
    parse_slo_spec,
    read_jsonl,
    render_prometheus,
)
from repro.obs.sinks import JsonlSink
from repro.resilience import BreakerConfig, FaultPlan
from repro.server import CoalesceConfig, TimingServerApp


def call(app, method, path, payload=None):
    """One app round trip, JSON-decoded when the response is JSON."""
    body = b"" if payload is None else json.dumps(payload).encode()
    status, ctype, out = app.handle(method, path, body)
    doc = json.loads(out) if ctype.startswith("application/json") else out
    return status, doc


def make_app(**kw):
    kw.setdefault("coalesce", CoalesceConfig(max_batch=8))
    app = TimingServerApp(**kw)
    app.registry.register_design(cascade_adder(4, 2))
    return app


def traced():
    tracer = Tracer()
    sink = RingBufferSink()
    tracer.add_sink(sink)
    return tracer, sink


# ------------------------------------------------------------- trace context
class TestTraceContext:
    def test_span_ids_nest_via_parent_ids(self):
        tracer, sink = traced()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.records()  # inner exits (records) first
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.span_id != outer.span_id != 0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == 0

    def test_context_binds_trace_id_to_records(self):
        tracer, sink = traced()
        with tracer.context("req-00000001"):
            with tracer.span("work"):
                tracer.event("step")
        tracer.event("after")
        work = sink.by_name("work")[0]
        step = sink.by_name("step")[0]
        after = sink.by_name("after")[0]
        assert work.trace_id == step.trace_id == "req-00000001"
        assert after.trace_id == ""
        assert tracer.current_trace_id() == ""

    def test_contexts_nest_and_restore(self):
        tracer, sink = traced()
        with tracer.context("outer-id"):
            assert tracer.current_trace_id() == "outer-id"
            with tracer.context("inner-id"):
                tracer.event("deep")
            tracer.event("shallow")
        assert sink.by_name("deep")[0].trace_id == "inner-id"
        assert sink.by_name("shallow")[0].trace_id == "outer-id"

    def test_event_parented_to_open_span(self):
        tracer, sink = traced()
        with tracer.span("host") as span:
            tracer.event("child")
        child = sink.by_name("child")[0]
        assert child.parent_id == sink.by_name("host")[0].span_id
        assert child.span_id == 0  # events are points, not spans

    def test_span_stacks_are_thread_local(self):
        tracer, sink = traced()
        barrier = threading.Barrier(2)
        thread_spans: dict[str, set[int]] = {}

        def worker(tag):
            with tracer.context(tag):
                with tracer.span(f"{tag}-outer"):
                    barrier.wait(5)  # both threads hold an open span
                    with tracer.span(f"{tag}-inner"):
                        pass
            thread_spans[tag] = {
                r.span_id
                for r in sink.records()
                if r.name.startswith(tag)
            }

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in ("alpha", "beta")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        for tag in ("alpha", "beta"):
            inner = sink.by_name(f"{tag}-inner")[0]
            outer = sink.by_name(f"{tag}-outer")[0]
            # nesting resolves within the thread, never across it
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id == tag

    def test_concurrent_spans_never_lose_records(self):
        tracer, sink = traced()
        n, per = 8, 50

        def worker(k):
            for i in range(per):
                with tracer.span("hammer", k=k, i=i):
                    pass

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        records = sink.by_name("hammer")
        assert len(records) == n * per
        assert len({r.span_id for r in records}) == n * per
        assert tracer.name_counts["hammer"] == n * per

    def test_null_tracer_context_is_noop(self):
        with NULL_TRACER.context("req-1"):
            with NULL_TRACER.span("x"):
                pass
        assert NULL_TRACER.current_trace_id() == ""

    def test_jsonl_roundtrip_preserves_context(self):
        tracer = Tracer()
        buffer = io.StringIO()
        tracer.add_sink(JsonlSink(buffer))
        with tracer.context("req-00000042"):
            with tracer.span("work"):
                pass
        records = read_jsonl(io.StringIO(buffer.getvalue()))
        (work,) = records
        assert work.trace_id == "req-00000042"
        assert work.span_id > 0

    def test_read_jsonl_counts_malformed_into_metrics(self):
        text = (
            '{"kind": "event", "name": "ok", "t": 0.0, "seconds": 0.0, '
            '"phase": null, "depth": 0}\n'
            "{broken json\n"
            '{"kind": "event"}\n'  # missing required fields
        )
        metrics = Metrics()
        records = read_jsonl(io.StringIO(text), metrics=metrics)
        assert len(records) == 1 and records.skipped == 2
        assert metrics.counter("obs.jsonl_malformed").value == 2
        # clean input leaves the counter untouched
        clean = Metrics()
        read_jsonl(io.StringIO(text.splitlines()[0] + "\n"), metrics=clean)
        assert "obs.jsonl_malformed" not in clean.counters


# ------------------------------------------------------ thread-safe metrics
class TestMetricsThreadSafety:
    def test_concurrent_updates_are_exact(self):
        metrics = Metrics()
        n, per = 8, 2000

        def worker():
            counter = metrics.counter("hits")
            histogram = metrics.histogram("lat")
            for i in range(per):
                counter.inc()
                histogram.observe(i * 1e-4)
                metrics.gauge("level").set(i)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert metrics.counter("hits").value == n * per
        h = metrics.histogram("lat")
        assert h.count == n * per
        assert h.cumulative_buckets()[-1] == (float("inf"), n * per)
        assert sum(h.bucket_counts) == n * per

    def test_concurrent_first_use_yields_one_instrument(self):
        metrics = Metrics()
        got = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait(5)
            got.append(metrics.counter("shared"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert len({id(c) for c in got}) == 1

    def test_render_while_hammering(self):
        metrics = Metrics()
        stop = threading.Event()

        def worker(k):
            while not stop.is_set():
                metrics.counter(f"c{k}").inc()
                metrics.histogram("h").observe(0.01)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                text = render_prometheus(metrics)
                assert text  # never raises mid-update
                metrics.as_dict()
        finally:
            stop.set()
            for t in threads:
                t.join(10)

    def test_instruments_survive_pickling(self):
        metrics = Metrics()
        metrics.counter("c").inc(3)
        metrics.histogram("h").observe(1.5)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.counter("c").value == 3
        clone.counter("c").inc()  # the recreated lock works
        assert clone.counter("c").value == 4
        assert clone.histogram("h").count == 1

    def test_tracer_shared_across_threads_keeps_totals(self):
        tracer = Tracer()
        n, per = 6, 200

        def worker():
            for _ in range(per):
                tracer.event("tick", phase="refinement", seconds=0.001)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert tracer.phase_events["refinement"] == n * per
        assert tracer.phase_totals()["refinement"] == pytest.approx(
            n * per * 0.001
        )


# ------------------------------------------------------------ flight recorder
def record(i=1, **kw):
    kw.setdefault("trace_id", f"req-{i:08d}")
    kw.setdefault("method", "POST")
    kw.setdefault("path", "/analyze")
    kw.setdefault("status", 200)
    kw.setdefault("finished_at", 1000.0 + i)
    kw.setdefault("latency_seconds", 0.001)
    return FlightRecord(**kw)


class TestFlightRecorder:
    def test_recent_newest_first_and_bounded(self):
        flight = FlightRecorder(capacity=3)
        for i in range(5):
            flight.record(record(i))
        recent = flight.recent()
        assert [r.trace_id for r in recent] == [
            "req-00000004", "req-00000003", "req-00000002",
        ]
        assert flight.recorded == 5
        assert flight.snapshot()["retained"] == 3

    def test_slow_ring_threshold(self):
        flight = FlightRecorder(capacity=8, slow_threshold=0.05)
        flight.record(record(1, latency_seconds=0.01))
        flight.record(record(2, latency_seconds=0.20))
        assert [r.trace_id for r in flight.slow()] == ["req-00000002"]
        assert flight.slow_count == 1

    def test_error_ring(self):
        flight = FlightRecorder(capacity=8)
        flight.record(record(1, status=200))
        flight.record(record(2, status=404, error="unknown-design"))
        flight.record(record(3, status=503, error="overloaded"))
        errors = flight.errors()
        assert [r.status for r in errors] == [503, 404]
        assert errors[1].error == "unknown-design"

    def test_find_searches_every_ring(self):
        flight = FlightRecorder(capacity=2, slow_threshold=0.05)
        flight.record(record(1, latency_seconds=0.2))  # recent + slow
        flight.record(record(2))
        flight.record(record(3))  # evicts 1 from recent
        assert flight.find("req-00000001").latency_seconds == 0.2
        assert flight.find("req-00000003") is not None
        assert flight.find("req-99999999") is None

    def test_capacity_zero_disables(self):
        flight = FlightRecorder(capacity=0)
        flight.record(record(1))
        assert not flight.enabled
        assert flight.recorded == 0 and flight.recent() == []

    def test_as_dict_shape(self):
        doc = record(
            7, batch_id="batch-x-000001", batch_size=4,
            queue_seconds=0.002, degraded=True,
            degradations=("evaluation-error",),
        ).as_dict()
        assert doc["trace_id"] == "req-00000007"
        assert doc["ok"] is True
        assert doc["batch_id"] == "batch-x-000001"
        assert doc["queue_ms"] == 2.0
        assert doc["degradations"] == ["evaluation-error"]

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=-1)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=4, slow_threshold=0.0)


# ------------------------------------------------------------------ SLO math
class FakeClock:
    def __init__(self, t=1_000_000.0):
        self.t = t

    def __call__(self):
        return self.t


def tracker(objective=None, **kw):
    objective = objective or SloObjective(
        "/analyze", latency_objective=0.1, target=0.999
    )
    clock = FakeClock()
    return SloTracker((objective,), clock=clock, **kw), clock


class TestSloTracker:
    def test_untracked_route_is_ignored(self):
        slo, _ = tracker()
        slo.observe("/healthz", 200, 5.0)
        assert slo.burn_rates("/analyze")["long_total"] == 0

    def test_all_good_burns_nothing(self):
        slo, clock = tracker()
        for _ in range(100):
            slo.observe("/analyze", 200, 0.01)
            clock.t += 1.0
        rates = slo.burn_rates("/analyze")
        assert rates["short_burn"] == rates["long_burn"] == 0.0
        assert slo.verdict("/analyze")["state"] == "ok"

    def test_latency_over_objective_is_bad(self):
        slo, clock = tracker()
        slo.observe("/analyze", 200, 0.5)  # slow counts against budget
        slo.observe("/analyze", 500, 0.01)  # 5xx does too
        slo.observe("/analyze", 404, 0.01)  # 4xx does not
        rates = slo.burn_rates("/analyze")
        assert rates["long_total"] == 3 and rates["long_bad"] == 2

    def test_sustained_failure_breaches(self):
        slo, clock = tracker()
        for _ in range(200):
            slo.observe("/analyze", 500, 0.01)
            clock.t += 1.0
        verdict = slo.verdict("/analyze")
        # all-bad at budget 0.001 -> burn 1000x on both windows
        assert verdict["short_burn"] == pytest.approx(1000.0)
        assert verdict["state"] == "breach"
        report = slo.report()
        assert report["state"] == "breach"

    def test_long_window_overdraft_warns(self):
        slo, clock = tracker(
            SloObjective("/analyze", latency_objective=0.1, target=0.9)
        )
        # 20% bad -> burn 2.0: over budget (warn) but far from 14.4
        for i in range(100):
            slo.observe("/analyze", 500 if i % 5 == 0 else 200, 0.01)
            clock.t += 40.0  # past the short window, inside the long
        verdict = slo.verdict("/analyze")
        assert verdict["long_burn"] >= 1.0
        assert verdict["state"] == "warn"

    def test_windows_prune(self):
        slo, clock = tracker()
        slo.observe("/analyze", 500, 0.01)
        clock.t += 4000.0  # past the 1h window
        slo.observe("/analyze", 200, 0.01)
        rates = slo.burn_rates("/analyze")
        assert rates["long_total"] == 1 and rates["long_bad"] == 0

    def test_export_gauges(self):
        slo, _ = tracker()
        slo.observe("/analyze", 500, 0.01)
        metrics = Metrics()
        slo.export_gauges(metrics)
        assert metrics.gauge("slo.analyze.short_burn").value > 0
        assert metrics.gauge("slo.analyze.long_bad").value == 1

    def test_parse_slo_spec(self):
        objective = parse_slo_spec("/analyze=250", target=0.99)
        assert objective.route == "/analyze"
        assert objective.latency_objective == pytest.approx(0.25)
        assert objective.target == 0.99
        for bad in ("analyze=250", "/analyze", "/analyze=fast"):
            with pytest.raises(ValueError):
                parse_slo_spec(bad)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SloObjective("/x", latency_objective=0.0)
        with pytest.raises(ValueError):
            SloObjective("/x", latency_objective=0.1, target=1.0)


# ---------------------------------------------------------- sampling profiler
class TestSamplingProfiler:
    def test_sample_once_folds_this_stack(self):
        profiler = SamplingProfiler(hz=100)
        assert profiler.sample_once() >= 1  # at least this thread
        text = profiler.collapsed()
        assert text.strip()
        line = text.splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        # this very test function appears in its own sampled stack
        assert any(
            "test_sample_once_folds_this_stack" in part
            for part in stack.split(";")
        )

    def test_snapshot_shape(self):
        profiler = SamplingProfiler(hz=50)
        profiler.sample_once()
        doc = profiler.snapshot(limit=5)
        assert doc["samples"] >= 1 and doc["ticks"] == 1
        assert doc["distinct_stacks"] >= 1
        top = doc["hot_stacks"][0]
        assert top["count"] >= 1 and 0 < top["fraction"] <= 1

    def test_background_sampling_accumulates(self):
        profiler = SamplingProfiler(hz=200)
        with profiler:
            assert profiler.running
            deadline = time.monotonic() + 2.0
            while profiler.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not profiler.running
        assert profiler.samples > 0

    def test_reset(self):
        profiler = SamplingProfiler(hz=100)
        profiler.sample_once()
        profiler.reset()
        assert profiler.samples == 0 and profiler.collapsed() == ""

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


# --------------------------------------------------- server: end-to-end wiring
class TestServerAttribution:
    def test_analyze_returns_batch_id_and_flight_record(self):
        app = make_app()
        try:
            status, doc = call(
                app, "POST", "/analyze",
                {"design": "csa4_2", "arrival": {"a0": 1.0}},
            )
            assert status == 200
            assert doc["batch_id"].startswith("batch-csa4_2-")
            status, got = call(
                app, "GET", f"/debug/requests?trace_id={doc['trace_id']}"
            )
            assert status == 200
            rec = got["record"]
            assert rec["trace_id"] == doc["trace_id"]
            assert rec["path"] == "/analyze" and rec["status"] == 200
            assert rec["design"] == "csa4_2"
            assert rec["batch_id"] == doc["batch_id"]
            assert rec["batch_size"] == doc["batch_size"]
        finally:
            app.close()

    def test_concurrent_coalesced_requests_attribute_end_to_end(self):
        """The tentpole contract: under concurrent coalesced load, every
        response's trace id resolves to its flight record, the flush
        span names the request ids it served, and the kernel work
        carries the batch id."""
        app = make_app()
        co = app.registry.get("csa4_2").coalescer
        entered, release = threading.Event(), threading.Event()
        calls = []
        inner = co.evaluate

        def gated(scenarios):
            calls.append(len(scenarios))
            if len(calls) == 1:
                entered.set()
                assert release.wait(10)
            return inner(scenarios)

        co.evaluate = gated
        results = {}

        def client(i):
            results[i] = call(
                app, "POST", "/analyze",
                {"design": "csa4_2", "arrival": {"a0": float(i)}},
            )

        try:
            first = threading.Thread(target=client, args=(0,))
            first.start()
            assert entered.wait(10)
            rest = [
                threading.Thread(target=client, args=(i,))
                for i in (1, 2, 3)
            ]
            for t in rest:
                t.start()
            while co.submitted < 4:
                time.sleep(0.001)
            release.set()
            first.join(10)
            for t in rest:
                t.join(10)

            for i in range(4):
                status, doc = results[i]
                assert status == 200 and doc["batch_id"]
            # requests 1-3 were served by one coalesced batch
            shared = {results[i][1]["batch_id"] for i in (1, 2, 3)}
            assert len(shared) == 1
            batch_id = shared.pop()
            assert batch_id != results[0][1]["batch_id"]
            trace_ids = {results[i][1]["trace_id"] for i in (1, 2, 3)}

            # the flush span names exactly the requests it served
            flushes = [
                r
                for r in app.trace_sink.by_name("coalescer.flush")
                if r.attrs.get("batch_id") == batch_id
            ]
            assert len(flushes) == 1
            assert set(flushes[0].attrs["requests"]) == trace_ids
            assert flushes[0].attrs["batch_size"] == 3

            # kernel work on the flusher thread carries the batch id
            kernel = [
                r
                for r in app.trace_sink.by_name("kernel-propagate")
                if r.trace_id == batch_id
            ]
            assert kernel and kernel[0].attrs["scenarios"] == 3

            # and each response's trace id resolves back to that batch
            for i in (1, 2, 3):
                doc = results[i][1]
                status, got = call(
                    app, "GET",
                    f"/debug/requests?trace_id={doc['trace_id']}",
                )
                assert status == 200
                assert got["record"]["batch_id"] == batch_id
                assert got["record"]["batch_size"] == 3
        finally:
            co.evaluate = inner
            app.close()

    def test_degraded_and_breaker_paths_reach_flight_recorder(self):
        plan = FaultPlan()
        app = make_app(
            fault_plan=plan,
            breaker=BreakerConfig(failure_threshold=1, reset_timeout=60.0),
        )
        try:
            req = {"design": "csa4_2", "arrival": {}}
            plan.add("server.propagate", kind="exception", times=1)
            status, degraded = call(app, "POST", "/analyze", req)
            assert status == 200 and degraded["degraded"] is True
            status, opened = call(app, "POST", "/analyze", req)
            assert status == 200 and opened["degraded"] is True

            for doc, kind in (
                (degraded, "evaluation-error"),
                (opened, "breaker-open"),
            ):
                status, got = call(
                    app, "GET",
                    f"/debug/requests?trace_id={doc['trace_id']}",
                )
                assert status == 200
                rec = got["record"]
                assert rec["degraded"] is True and rec["ok"] is True
                assert kind in rec["degradations"]
        finally:
            app.close()

    def test_error_responses_land_in_error_ring(self):
        app = make_app()
        try:
            status, doc = call(
                app, "POST", "/analyze",
                {"design": "ghost", "arrival": {}},
            )
            assert status == 404
            status, got = call(app, "GET", "/debug/requests")
            assert status == 200
            errors = got["errors"]
            assert errors and errors[0]["trace_id"] == doc["trace_id"]
            assert errors[0]["error"] == "unknown-design"
            assert errors[0]["status"] == 404
        finally:
            app.close()

    def test_unknown_trace_id_is_a_structured_404(self):
        app = make_app()
        try:
            status, doc = call(
                app, "GET", "/debug/requests?trace_id=req-99999999"
            )
            assert status == 404
            assert doc["error"]["code"] == "unknown-trace-id"
        finally:
            app.close()

    def test_flight_capacity_zero_disables_recording(self):
        app = make_app(flight_capacity=0)
        try:
            status, doc = call(
                app, "POST", "/analyze",
                {"design": "csa4_2", "arrival": {}},
            )
            assert status == 200
            status, got = call(app, "GET", "/debug/requests")
            assert status == 200
            assert got["flight"]["enabled"] is False
            assert got["requests"] == []
        finally:
            app.close()


class TestServerDebugRoutes:
    def test_slow_ring_route(self):
        app = make_app(slow_threshold=1e-9)  # everything is "slow"
        try:
            call(app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}})
            status, got = call(app, "GET", "/debug/slow?limit=5")
            assert status == 200
            assert got["slow"]
            assert got["slow"][0]["path"] == "/analyze"
        finally:
            app.close()

    def test_limit_validation(self):
        app = make_app()
        try:
            status, doc = call(app, "GET", "/debug/requests?limit=0")
            assert status == 400
            status, doc = call(app, "GET", "/debug/requests?limit=zebra")
            assert status == 400
        finally:
            app.close()

    def test_profile_404_when_disabled(self):
        app = make_app()
        try:
            status, doc = call(app, "GET", "/debug/profile")
            assert status == 404
            assert doc["error"]["code"] == "profiler-disabled"
        finally:
            app.close()

    def test_profile_collapsed_and_json(self):
        profiler = SamplingProfiler(hz=100)
        app = make_app(profiler=profiler)
        try:
            profiler.sample_once()  # deterministic: no timing dependence
            status, ctype, out = app.handle("GET", "/debug/profile")
            assert status == 200
            assert ctype.startswith("text/plain")
            stack, count = out.decode().splitlines()[0].rsplit(" ", 1)
            assert int(count) >= 1 and ";" in stack
            status, doc = call(app, "GET", "/debug/profile?format=json")
            assert status == 200
            assert doc["samples"] >= 1 and doc["hot_stacks"]
            status, doc = call(app, "GET", "/debug/profile?format=xml")
            assert status == 400
        finally:
            app.close()

    def test_healthz_slo_untracked(self):
        app = make_app()
        try:
            status, doc = call(app, "GET", "/healthz/slo")
            assert status == 200 and doc["state"] == "untracked"
        finally:
            app.close()

    def test_healthz_slo_tracks_and_exports_gauges(self):
        app = make_app(
            slo=[SloObjective("/analyze", latency_objective=30.0)]
        )
        try:
            call(app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}})
            status, doc = call(app, "GET", "/healthz/slo")
            assert status == 200
            route = doc["routes"]["/analyze"]
            assert route["long_total"] >= 1 and route["state"] == "ok"
            status, _, out = app.handle("GET", "/metrics")
            text = out.decode()
            assert "slo_analyze_short_burn" in text
            assert "slo_analyze_long_burn" in text
        finally:
            app.close()

    def test_healthz_slo_breach_is_503(self):
        app = make_app(
            slo=[SloObjective("/analyze", latency_objective=1e-12)]
        )
        try:
            for _ in range(5):  # every request misses a 1ps objective
                call(
                    app, "POST", "/analyze",
                    {"design": "csa4_2", "arrival": {}},
                )
            status, doc = call(app, "GET", "/healthz/slo")
            assert status == 503
            assert doc["state"] == "breach"
            assert doc["routes"]["/analyze"]["short_burn"] >= doc[
                "fast_burn_threshold"
            ]
        finally:
            app.close()


class TestServerMetricsExposition:
    def test_metrics_render_histogram_families(self):
        app = make_app()
        try:
            call(app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}})
            status, _, out = app.handle("GET", "/metrics")
            assert status == 200
            text = out.decode()
            assert "# TYPE server_request_seconds histogram" in text
            assert 'server_request_seconds_bucket{le="+Inf"}' in text
            bucket_lines = [
                ln
                for ln in text.splitlines()
                if ln.startswith("server_request_seconds_bucket")
            ]
            assert len(bucket_lines) == len(BUCKET_BOUNDS) + 1
        finally:
            app.close()

    def test_scrape_during_concurrent_requests(self):
        """The satellite-2 hammer: many handler threads serve analysis
        while /metrics and /debug/requests are scraped; nothing races
        and the final counters are exact."""
        app = make_app()
        n, per = 4, 6
        failures = []

        def client(k):
            for i in range(per):
                status, doc = call(
                    app, "POST", "/analyze",
                    {"design": "csa4_2", "arrival": {"a0": float(i)}},
                )
                if status != 200:
                    failures.append((k, i, doc))

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(n)
        ]
        try:
            for t in threads:
                t.start()
            while any(t.is_alive() for t in threads):
                status, _, out = app.handle("GET", "/metrics")
                assert status == 200 and out
                status, _ = call(app, "GET", "/debug/requests")
                assert status == 200
            for t in threads:
                t.join(10)
            assert not failures
            metrics = app.tracer.metrics
            assert (
                metrics.counter("server.responses.200").value
                == metrics.counter("server.requests").value
            )
            assert app.flight.recorded == int(
                metrics.counter("server.requests").value
            )
            ok = metrics.counter("server.responses.200").value
            assert ok >= n * per
        finally:
            app.close()
