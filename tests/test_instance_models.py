"""Tests for per-instance SDC-aware characterization (footnote 6)."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.demand import flat_functional_delay
from repro.core.hier import HierarchicalAnalyzer
from repro.core.instance_models import (
    PerInstanceAnalyzer,
    characterize_instance,
    instance_care_network,
)
from repro.core.xbd0 import StabilityAnalyzer
from repro.errors import AnalysisError
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.sim.vectors import all_vectors


def sdc_design() -> HierDesign:
    """A design whose second module's select input is always 1.

    Module ``mux_mod``: z = MUX(s, long(a), b) where the a-branch rides a
    4-deep chain.  The driver forces s = OR(x, NOT x) = 1, so the long
    branch is never selected — but only the care set knows that.
    """
    mux_mod = Network("mux_mod")
    s, a, b = mux_mod.add_inputs(["s", "a", "b"])
    sig = a
    for i in range(4):
        sig = mux_mod.add_gate(f"ch{i}", "BUF", [sig], 1.0)
    mux_mod.add_gate("z", "MUX", [s, sig, b], 1.0)
    mux_mod.set_outputs(["z"])

    driver = Network("one_mod")
    x = driver.add_input("x")
    nx = driver.add_gate("nx", "NOT", [x], 1.0)
    driver.add_gate("one", "OR", [x, nx], 1.0)
    driver.set_outputs(["one"])

    design = HierDesign("sdc")
    design.add_module(Module("mux_mod", mux_mod))
    design.add_module(Module("one_mod", driver))
    for pi in ("x", "a", "b"):
        design.add_input(pi)
    design.add_instance("u_one", "one_mod", {"x": "x", "one": "sel"})
    design.add_instance(
        "u_mux", "mux_mod", {"s": "sel", "a": "a", "b": "b", "z": "z"}
    )
    design.set_outputs(["z"])
    design.validate()
    return design


class TestCareNetwork:
    def test_outputs_named_after_ports(self):
        design = sdc_design()
        care = instance_care_network(design, "u_mux")
        assert set(care.outputs) == {"s", "a", "b"}

    def test_image_is_restricted(self):
        design = sdc_design()
        care = instance_care_network(design, "u_mux")
        images = set()
        for vec in all_vectors(care.inputs):
            values = care.output_values(vec)
            images.add((values["s"], values["a"], values["b"]))
        # s is always True in the image
        assert all(s for s, _, _ in images)
        # a, b range freely
        assert len(images) == 4

    def test_pi_fed_port_is_free(self):
        design = cascade_adder(4, 2)
        care = instance_care_network(design, "u0")
        # u0's ports are all fed by top PIs: the care image is everything
        count = sum(1 for _ in all_vectors(care.inputs))
        images = {
            tuple(care.output_values(vec)[p] for p in care.outputs)
            for vec in all_vectors(care.inputs)
        }
        assert len(images) == count  # bijective pass-through


class TestCareAwareStability:
    def test_care_removes_false_branch(self):
        design = sdc_design()
        module = design.modules["mux_mod"].network
        care = instance_care_network(design, "u_mux")
        # generic: the long branch constrains 'a' (delay 5)
        generic = StabilityAnalyzer(module, {"a": -5.0, "s": -1.0, "b": -1.0})
        assert generic.stable_at("z", 0.0)
        loose = StabilityAnalyzer(
            module, {"a": 100.0, "s": -1.0, "b": -1.0}
        )
        assert not loose.stable_at("z", 0.0)
        # with the care set (s always 1), 'a' is irrelevant
        with_care = StabilityAnalyzer(
            module, {"a": 100.0, "s": -1.0, "b": -1.0}, care=care
        )
        assert with_care.stable_at("z", 0.0)

    def test_brute_engine_agrees_with_sat(self):
        design = sdc_design()
        module = design.modules["mux_mod"].network
        care = instance_care_network(design, "u_mux")
        for arrival_a in (-5.0, 0.0, 100.0):
            arrival = {"a": arrival_a, "s": -1.0, "b": -1.0}
            sat = StabilityAnalyzer(module, arrival, "sat", care=care)
            brute = StabilityAnalyzer(module, arrival, "brute", care=care)
            assert sat.stable_at("z", 0.0) == brute.stable_at("z", 0.0)

    def test_bdd_engine_rejects_care(self):
        design = sdc_design()
        module = design.modules["mux_mod"].network
        care = instance_care_network(design, "u_mux")
        with pytest.raises(AnalysisError):
            StabilityAnalyzer(module, engine="bdd", care=care)

    def test_care_outputs_must_be_pis(self):
        net = Network("n")
        net.add_input("a")
        net.add_gate("z", "BUF", ["a"], 1.0)
        net.set_outputs(["z"])
        bad_care = Network("c")
        bad_care.add_input("x")
        bad_care.add_gate("zz", "BUF", ["x"], 0.0)
        bad_care.set_outputs(["zz"])
        with pytest.raises(AnalysisError):
            StabilityAnalyzer(net, care=bad_care)


class TestInstanceCharacterization:
    def test_sdc_model_drops_the_dead_branch(self):
        design = sdc_design()
        models = characterize_instance(design, "u_mux")
        z = models["z"]
        # module input order: s, a, b
        assert z.inputs == ("s", "a", "b")
        assert z.delay_from("a") == float("-inf")  # never selected
        assert z.delay_from("b") == 1.0
        # the generic model keeps the chain
        generic = HierarchicalAnalyzer(design).models_for("mux_mod")["z"]
        assert generic.delay_from("a") == 5.0

    def test_per_instance_analyzer_more_accurate_yet_conservative(self):
        design = sdc_design()
        arrival = {"a": 10.0}  # the dead branch arrives very late
        per_instance = PerInstanceAnalyzer(design).analyze(arrival)
        generic = HierarchicalAnalyzer(design).analyze(arrival)
        flat_delay, _, _ = flat_functional_delay(design, arrival)
        assert per_instance.delay <= generic.delay
        assert flat_delay <= per_instance.delay + 1e-9
        # the whole point: the per-instance model ignores 'a'
        assert per_instance.delay < generic.delay

    def test_equals_generic_when_no_sdc(self):
        design = cascade_adder(4, 2)
        per_instance = PerInstanceAnalyzer(design).analyze()
        generic = HierarchicalAnalyzer(design).analyze()
        # first block has free inputs; second block's c_in is driven but
        # the carry can take both values, so models coincide
        assert per_instance.delay == generic.delay
        for out in design.outputs:
            assert per_instance.output_times[out] == pytest.approx(
                generic.output_times[out]
            )

    def test_unknown_instance_rejected(self):
        design = cascade_adder(4, 2)
        analyzer = PerInstanceAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.models_for_instance("ghost")
