"""Tests for logic simulation and the per-vector XBD0 oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block
from repro.circuits.random_logic import random_network
from repro.netlist.gates import GateType
from repro.netlist.network import Network
from repro.sim.logic import ternary_gate, ternary_simulate
from repro.sim.timed import (
    NEG_INF,
    brute_force_delay,
    brute_force_stable_at,
    stable_times,
    vector_output_delay,
)
from repro.sim.vectors import all_vectors, corner_vectors, random_vectors
from repro.sta.topological import arrival_times


class TestTernary:
    def test_and_controlling_beats_x(self):
        assert ternary_gate(GateType.AND, [False, None]) is False
        assert ternary_gate(GateType.AND, [True, None]) is None
        assert ternary_gate(GateType.AND, [True, True]) is True

    def test_or_controlling_beats_x(self):
        assert ternary_gate(GateType.OR, [True, None]) is True
        assert ternary_gate(GateType.OR, [False, None]) is None

    def test_xor_x_poisons(self):
        assert ternary_gate(GateType.XOR, [True, None]) is None

    def test_mux_consensus(self):
        # unknown select but agreeing data -> known output
        assert ternary_gate(GateType.MUX, [None, True, True]) is True
        assert ternary_gate(GateType.MUX, [None, True, False]) is None
        assert ternary_gate(GateType.MUX, [True, None, False]) is False

    def test_not_buf(self):
        assert ternary_gate(GateType.NOT, [None]) is None
        assert ternary_gate(GateType.BUF, [False]) is False

    def test_simulate_defaults_to_x(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"])
        values = ternary_simulate(net, {"a": False})
        assert values["z"] is False
        values = ternary_simulate(net, {"a": True})
        assert values["z"] is None


class TestVectors:
    def test_all_vectors_count(self):
        assert len(list(all_vectors(["a", "b", "c"]))) == 8

    def test_random_vectors_deterministic(self):
        assert random_vectors(["a", "b"], 5, seed=1) == random_vectors(
            ["a", "b"], 5, seed=1
        )

    def test_corner_vectors(self):
        vecs = corner_vectors(["a", "b"])
        assert {"a": False, "b": False} in vecs
        assert {"a": True, "b": False} in vecs


class TestStableTimes:
    def test_and_controlled_by_earliest_zero(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        arr = {"a": 0.0, "b": 5.0}
        # a=0 controls: stable at 0+1 regardless of b
        assert vector_output_delay(net, {"a": False, "b": True}, "z", arr) == 1.0
        # both 1: need both stable
        assert vector_output_delay(net, {"a": True, "b": True}, "z", arr) == 6.0
        # b=0 controls but arrives late
        assert vector_output_delay(net, {"a": True, "b": False}, "z", arr) == 6.0

    def test_xor_always_needs_both(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "XOR", ["a", "b"], 2.0)
        net.set_outputs(["z"])
        arr = {"a": 1.0, "b": 3.0}
        for vec in all_vectors(["a", "b"]):
            assert vector_output_delay(net, vec, "z", arr) == 5.0

    def test_mux_skip_path(self):
        net = Network()
        net.add_inputs(["s", "d0", "d1"])
        net.add_gate("z", "MUX", ["s", "d0", "d1"], 1.0)
        net.set_outputs(["z"])
        arr = {"s": 0.0, "d0": 10.0, "d1": 0.0}
        # select=1 passes d1: d0's lateness is irrelevant
        assert vector_output_delay(
            net, {"s": True, "d0": True, "d1": False}, "z", arr
        ) == 1.0
        # consensus: d0 == d1 means the output is known once both are,
        # even while select is late
        arr2 = {"s": 10.0, "d0": 0.0, "d1": 0.0}
        assert vector_output_delay(
            net, {"s": True, "d0": True, "d1": True}, "z", arr2
        ) == 1.0

    def test_constant_gate_stable_from_start(self):
        net = Network()
        net.add_input("a")
        net.add_gate("k", "CONST1", [], 1.0)
        net.add_gate("z", "OR", ["a", "k"], 1.0)
        net.set_outputs(["z"])
        st_ = stable_times(net, {"a": True})
        assert st_["k"] == NEG_INF
        # OR controlled by the constant 1: stable at -inf + never mind a
        assert st_["z"] == NEG_INF

    def test_neg_inf_arrival(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        arr = {"a": NEG_INF, "b": 0.0}
        assert vector_output_delay(net, {"a": True, "b": True}, "z", arr) == 1.0
        assert vector_output_delay(net, {"a": False, "b": True}, "z", arr) == NEG_INF


class TestBruteForce:
    def test_carry_skip_known_delays(self, csa_block2):
        assert brute_force_delay(csa_block2, "s0") == 4.0
        assert brute_force_delay(csa_block2, "s1") == 6.0
        assert brute_force_delay(csa_block2, "c_out") == 8.0

    def test_stable_at_monotone(self, csa_block2):
        assert not brute_force_stable_at(csa_block2, "c_out", 7.9)
        assert brute_force_stable_at(csa_block2, "c_out", 8.0)
        assert brute_force_stable_at(csa_block2, "c_out", 12.0)

    def test_delay_never_exceeds_topological(self):
        net = random_network(6, 20, seed=42, num_outputs=2)
        at = arrival_times(net)
        for o in net.outputs:
            assert brute_force_delay(net, o) <= at[o] + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_delay_below_topological(self, seed):
        net = random_network(5, 14, seed=seed, num_outputs=1)
        at = arrival_times(net)
        out = net.outputs[0]
        assert brute_force_delay(net, out) <= at[out] + 1e-9
