"""Functional-correctness tests for every circuit generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    carry_select_adder,
    carry_skip_block,
    cascade_adder,
    full_adder,
    ripple_adder,
)
from repro.circuits.iscaslike import alu, shared_select_chain, table2_circuits
from repro.circuits.partition import cascade_bipartition, group_cascade, subnetwork
from repro.circuits.random_logic import random_network
from repro.circuits.trees import (
    and_or_tree,
    carry_lookahead_adder,
    comparator,
    mux_tree,
    parity_tree,
    priority_encoder,
)
from repro.errors import NetlistError
from repro.netlist.ops import networks_equivalent_on
from repro.sim.vectors import all_vectors, random_vectors


def _decode(values, bits, prefix="s"):
    return sum((1 << i) for i in range(bits) if values[f"{prefix}{i}"])


def _adds_correctly(net, bits, carry_name, vectors):
    for vec in vectors:
        values = net.output_values(vec)
        a = sum((1 << i) for i in range(bits) if vec[f"a{i}"])
        b = sum((1 << i) for i in range(bits) if vec[f"b{i}"])
        want = a + b + int(vec.get("c_in", False))
        got = _decode(values, bits) + ((1 << bits) if values[carry_name] else 0)
        assert got == want, (vec, got, want)


class TestAdders:
    def test_full_adder_truth_table(self):
        net = full_adder()
        for vec in all_vectors(net.inputs):
            values = net.output_values(vec)
            total = int(vec["a"]) + int(vec["b"]) + int(vec["cin"])
            assert values["sum"] == bool(total & 1)
            assert values["cout"] == bool(total >> 1)

    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_ripple_adder(self, bits):
        net = ripple_adder(bits)
        vectors = (
            list(all_vectors(net.inputs))
            if bits <= 2
            else random_vectors(net.inputs, 64, seed=4)
        )
        _adds_correctly(net, bits, f"c{bits}", vectors)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_carry_skip_block_adds(self, bits):
        net = carry_skip_block(bits)
        vectors = (
            list(all_vectors(net.inputs))
            if bits <= 3
            else random_vectors(net.inputs, 128, seed=5)
        )
        _adds_correctly(net, bits, "c_out", vectors)

    @pytest.mark.parametrize("n,m", [(4, 2), (8, 4), (6, 3)])
    def test_cascade_adder_adds(self, n, m):
        flat = cascade_adder(n, m).flatten()
        _adds_correctly(flat, n, f"c{n}", random_vectors(flat.inputs, 64, seed=6))

    @pytest.mark.parametrize("n,m", [(4, 2), (8, 2), (9, 3)])
    def test_carry_select_adder_adds(self, n, m):
        net = carry_select_adder(n, m)
        _adds_correctly(net, n, f"c{n}", random_vectors(net.inputs, 96, seed=7))

    def test_cascade_requires_divisible(self):
        with pytest.raises(NetlistError):
            cascade_adder(10, 4)

    def test_invalid_sizes(self):
        with pytest.raises(NetlistError):
            ripple_adder(0)
        with pytest.raises(NetlistError):
            carry_skip_block(0)


class TestTrees:
    @pytest.mark.parametrize("width", [1, 2, 5, 8])
    def test_parity_tree(self, width):
        net = parity_tree(width)
        for vec in random_vectors(net.inputs, 32, seed=8):
            want = sum(vec.values()) % 2 == 1
            assert net.output_values(vec)[net.outputs[0]] == want

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_mux_tree_selects(self, bits):
        net = mux_tree(bits)
        for vec in random_vectors(net.inputs, 48, seed=9):
            sel = sum((1 << i) for i in range(bits) if vec[f"s{i}"])
            assert net.output_values(vec)[net.outputs[0]] == vec[f"d{sel}"]

    def test_and_or_tree_depth2(self):
        net = and_or_tree(2)
        # (x0·x1) + (x2·x3)
        for vec in all_vectors(net.inputs):
            want = (vec["x0"] and vec["x1"]) or (vec["x2"] and vec["x3"])
            assert net.output_values(vec)[net.outputs[0]] == want

    @pytest.mark.parametrize("width", [1, 3, 6])
    def test_comparator(self, width):
        net = comparator(width)
        for vec in random_vectors(net.inputs, 64, seed=10):
            a = sum((1 << i) for i in range(width) if vec[f"a{i}"])
            b = sum((1 << i) for i in range(width) if vec[f"b{i}"])
            values = net.output_values(vec)
            assert values["eq"] == (a == b)
            assert values["gt"] == (a > b)

    @pytest.mark.parametrize("width", [1, 4, 7])
    def test_priority_encoder(self, width):
        net = priority_encoder(width)
        for vec in random_vectors(net.inputs, 48, seed=11):
            values = net.output_values(vec)
            first = next(
                (i for i in range(width) if vec[f"r{i}"]), None
            )
            assert values["valid"] == (first is not None)
            for i in range(width):
                assert values[f"y{i}"] == (i == first)

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_cla_matches_ripple(self, width):
        cla = carry_lookahead_adder(width)
        _adds_correctly(cla, width, f"c{width}",
                        random_vectors(cla.inputs, 96, seed=12))


class TestALU:
    def test_alu_operations(self):
        net = alu(4)
        for vec in random_vectors(net.inputs, 128, seed=13):
            a = sum((1 << i) for i in range(4) if vec[f"a{i}"])
            b = sum((1 << i) for i in range(4) if vec[f"b{i}"])
            op = (int(vec["op1"]) << 1) | int(vec["op0"])
            values = net.output_values(vec)
            y = sum((1 << i) for i in range(4) if values[f"y{i}"])
            if op == 0:
                assert y == (a & b)
            elif op == 1:
                assert y == (a | b)
            elif op == 2:
                assert y == (a ^ b)
            else:
                assert y == (a + b + int(vec["c_in"])) & 0xF


class TestRandomLogic:
    def test_deterministic_per_seed(self):
        a = random_network(5, 10, seed=99)
        b = random_network(5, 10, seed=99)
        assert networks_equivalent_on(a, b, random_vectors(a.inputs, 16, 0))

    def test_requested_sizes(self):
        net = random_network(7, 25, seed=1, num_outputs=3)
        assert len(net.inputs) == 7
        assert net.num_gates() == 25
        assert len(net.outputs) == 3

    def test_acyclic(self):
        net = random_network(6, 40, seed=2)
        net.topological_order()  # raises on cycles


class TestPartition:
    @pytest.mark.parametrize("name", sorted(table2_circuits()))
    def test_bipartition_preserves_function(self, name):
        net = table2_circuits()[name]
        design = cascade_bipartition(net)
        flat = design.flatten()
        assert networks_equivalent_on(
            net, flat, random_vectors(net.inputs, 48, seed=14)
        )

    def test_bipartition_two_modules(self):
        net = shared_select_chain()
        design = cascade_bipartition(net)
        assert len(design.modules) == 2
        assert len(design.instances) == 2

    def test_bad_fraction_rejected(self):
        net = shared_select_chain()
        with pytest.raises(NetlistError):
            cascade_bipartition(net, cut_fraction=0.0)

    def test_tiny_circuit_rejected(self):
        from repro.netlist.network import Network

        net = Network()
        net.add_input("a")
        net.add_gate("z", "NOT", ["a"])
        net.set_outputs(["z"])
        with pytest.raises(NetlistError):
            cascade_bipartition(net)

    def test_subnetwork_output_must_be_inside(self):
        net = shared_select_chain()
        with pytest.raises(NetlistError):
            subnetwork(net, {"ch0"}, ["outer"], "frag")

    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_group_cascade_preserves_function(self, groups):
        design = cascade_adder(8, 2)
        grouped = group_cascade(design, groups)
        assert networks_equivalent_on(
            design.flatten(),
            grouped.flatten(),
            random_vectors(design.flatten().inputs, 32, seed=15),
        )

    def test_group_count_validated(self):
        design = cascade_adder(8, 2)
        with pytest.raises(NetlistError):
            group_cascade(design, 9)
