"""Tests for the benchmark harness and the table/figure regenerators."""

import pytest

from repro.bench.figures import compute_figures
from repro.bench.harness import (
    COMPARISON_HEADERS,
    ComparisonRow,
    fmt,
    render_table,
    stopwatch,
)
from repro.bench.table1 import DEFAULT_GRID, run_row
from repro.bench.table2 import TABLE2_ROWS
from repro.bench.table2 import run_row as run_row2


class TestFormatting:
    def test_fmt_integral_float(self):
        assert fmt(8.0) == "8"
        assert fmt(8.25) == "8.250"
        assert fmt(float("-inf")) == "-inf"
        assert fmt(float("inf")) == "inf"
        assert fmt("csa8.2") == "csa8.2"

    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1.0], ["bbbb", 22.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_stopwatch(self):
        with stopwatch() as t:
            sum(range(1000))
        assert t.seconds >= 0.0


class TestComparisonRow:
    def make(self, hier=10.0, flat=10.0, hsec=0.1, fsec=1.0):
        return ComparisonRow(
            circuit="x",
            topological_delay=20.0,
            hierarchical_delay=hier,
            hierarchical_seconds=hsec,
            flat_delay=flat,
            flat_seconds=fsec,
        )

    def test_exact_and_overestimate(self):
        assert self.make().exact
        row = self.make(hier=12.0)
        assert not row.exact
        assert row.overestimate == 2.0

    def test_speedup(self):
        assert self.make().speedup == 10.0
        assert self.make(hsec=0.0).speedup == float("inf")

    def test_cells_align_with_headers(self):
        assert len(self.make().cells()) == len(COMPARISON_HEADERS)


class TestTable1Rows:
    def test_default_grid_has_nine_circuits(self):
        assert len(DEFAULT_GRID) == 9
        assert len(set(DEFAULT_GRID)) == 9

    def test_small_row_reproduces_shape(self):
        row = run_row(8, 2)
        assert row.circuit == "csa8.2"
        assert row.topological_delay == 26.0
        assert row.hierarchical_delay == 16.0
        assert row.exact
        assert row.extra["refinement_checks"] > 0

    def test_row_without_flat(self):
        row = run_row(8, 4, flat=False)
        assert row.hierarchical_delay == 20.0
        assert row.flat_delay != row.flat_delay  # NaN


class TestTable2Rows:
    def test_row_names_cover_seven_circuits(self):
        assert len(TABLE2_ROWS) == 7

    @pytest.mark.parametrize("name", ["c17", "gfp"])
    def test_rows_run(self, name):
        row = run_row2(name)
        assert row.hierarchical_delay <= row.topological_delay
        assert row.overestimate >= 0


class TestFigures:
    def test_compute_figures_bdd_engine(self):
        data = compute_figures(engine="bdd")
        assert data.fig4_c4 == 10.0
        assert data.fig5_functional_slack == 1.0
