"""Tests for Tseitin encoding of networks and miter construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block, ripple_adder
from repro.circuits.random_logic import random_network
from repro.netlist.network import Network
from repro.sat.solver import Solver, SolveResult, solve_cnf
from repro.sat.tseitin import NetworkEncoder, miter_cnf
from repro.sim.vectors import random_vectors


def test_encoding_consistent_with_simulation():
    net = carry_skip_block(2)
    enc = NetworkEncoder()
    mapping = enc.encode(net)
    for vec in random_vectors(net.inputs, 16, seed=5):
        assumptions = [
            mapping[x] if vec[x] else -mapping[x] for x in net.inputs
        ]
        solver = Solver(enc.cnf)
        assert solver.solve(assumptions) is SolveResult.SAT
        model = solver.model()
        values = net.evaluate(vec)
        for sig, var in mapping.items():
            assert model[var] == values[sig], sig


def test_all_gate_types_encode():
    net = Network("every")
    a, b, c = net.add_inputs(["a", "b", "c"])
    net.add_gate("and_", "AND", [a, b])
    net.add_gate("or_", "OR", [a, b, c])
    net.add_gate("nand_", "NAND", [a, b])
    net.add_gate("nor_", "NOR", [b, c])
    net.add_gate("xor_", "XOR", [a, b, c])
    net.add_gate("xnor_", "XNOR", [a, b])
    net.add_gate("not_", "NOT", [a])
    net.add_gate("buf_", "BUF", [c])
    net.add_gate("mux_", "MUX", [a, b, c])
    net.add_gate("one_", "CONST1", [])
    net.add_gate("zero_", "CONST0", [])
    net.set_outputs(["mux_"])
    enc = NetworkEncoder()
    mapping = enc.encode(net)
    for vec in random_vectors(net.inputs, 8, seed=11):
        assumptions = [
            mapping[x] if vec[x] else -mapping[x] for x in net.inputs
        ]
        solver = Solver(enc.cnf)
        assert solver.solve(assumptions) is SolveResult.SAT
        model = solver.model()
        values = net.evaluate(vec)
        for sig, var in mapping.items():
            assert model[var] == values[sig], sig


def test_miter_equivalent_networks_unsat():
    left = ripple_adder(2)
    right = ripple_adder(2)
    cnf, _ = miter_cnf(left, right)
    result, _ = solve_cnf(cnf)
    assert result is SolveResult.UNSAT


def test_miter_detects_difference():
    left = Network("l")
    left.add_inputs(["a", "b"])
    left.add_gate("z", "AND", ["a", "b"])
    left.set_outputs(["z"])
    right = Network("r")
    right.add_inputs(["a", "b"])
    right.add_gate("z", "OR", ["a", "b"])
    right.set_outputs(["z"])
    cnf, _ = miter_cnf(left, right)
    result, model = solve_cnf(cnf)
    assert result is SolveResult.SAT


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_miter_random_network_self_equivalence(seed):
    net = random_network(5, 12, seed=seed, num_outputs=2)
    cnf, _ = miter_cnf(net, net.copy())
    result, _ = solve_cnf(cnf)
    assert result is SolveResult.UNSAT
