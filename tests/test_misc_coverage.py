"""Remaining-path coverage: CLI regenerators, file I/O, stub edges."""

import io

import pytest

from repro.circuits.adders import carry_skip_block
from repro.cli import main
from repro.core.ipblock import stub_network
from repro.core.timing_model import NEG_INF, TimingModel
from repro.sat.cnf import CNF
from repro.sat.dimacs import read_dimacs, write_dimacs


class TestCLIRegenerators:
    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "csaflat8" in out

    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "repro-sta" in capsys.readouterr().out


class TestDimacsFileIO:
    def test_stream_roundtrip(self, tmp_path):
        cnf = CNF(4)
        cnf.add_clause((1, -2, 3))
        cnf.add_clause((-4,))
        path = tmp_path / "f.cnf"
        with path.open("w") as fp:
            write_dimacs(cnf, fp)
        with path.open() as fp:
            again = read_dimacs(fp)
        assert list(again) == list(cnf)
        assert again.num_vars == 4

    def test_percent_terminated_file(self):
        # some generators end files with '%' lines; tolerated
        text = "p cnf 2 1\n1 2 0\n%\n0\n"
        cnf = read_dimacs(io.StringIO(text))
        assert (1, 2) in cnf.clauses


class TestStubEdges:
    def test_output_with_no_dependencies_is_constant(self):
        model = TimingModel("z", ("a",), ((NEG_INF,),))
        stub = stub_network("s", ("a",), ("z",), {"z": model})
        assert stub.gate("z").gtype.value == "CONST0"

    def test_negative_worst_delay_clamped(self):
        model = TimingModel("z", ("a",), ((-2.0,),))
        stub = stub_network("s", ("a",), ("z",), {"z": model})
        # stub gates cannot carry negative delays
        assert stub.gate("_bb_z_a").delay == 0.0


class TestExprManagerContradictions:
    def test_lit_and_complement_collapse(self):
        """x · ¬x inside a stability conjunction folds to FALSE."""
        from repro.core.xbd0 import _ExprManager

        exprs = _ExprManager()
        x_pos = exprs.lit("x", True)
        x_neg = exprs.lit("x", False)
        assert exprs.conj([x_pos, x_neg]) == _ExprManager.FALSE
        assert exprs.disj([x_pos, x_neg]) == _ExprManager.TRUE

    def test_nested_flattening(self):
        from repro.core.xbd0 import _ExprManager

        exprs = _ExprManager()
        a = exprs.lit("a", True)
        b = exprs.lit("b", True)
        c = exprs.lit("c", True)
        inner = exprs.conj([a, b])
        flat = exprs.conj([inner, c])
        direct = exprs.conj([a, b, c])
        assert flat == direct

    def test_support_and_evaluate(self):
        from repro.core.xbd0 import _ExprManager

        exprs = _ExprManager()
        a = exprs.lit("a", True)
        b = exprs.lit("b", False)
        node = exprs.disj([exprs.conj([a, b]), exprs.lit("c", True)])
        assert exprs.support(node) == {"a", "b", "c"}
        assert exprs.evaluate(
            node, {"a": True, "b": False, "c": False}
        )
        assert not exprs.evaluate(
            node, {"a": False, "b": False, "c": False}
        )


class TestBlockInputOrderHelper:
    def test_matches_generator(self):
        from repro.circuits.adders import block_input_order

        assert tuple(block_input_order(2)) == carry_skip_block(2).inputs
        assert carry_skip_block(2).inputs == (
            "c_in", "a0", "b0", "a1", "b1"
        )
