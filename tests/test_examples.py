"""Every example script runs clean and prints its headline facts."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: script -> substrings its output must contain
EXPECTATIONS = {
    "quickstart.py": [
        "T_c_out[c_in, a0, b0, a1, b1] = {(2, 8, 8, 6, 6)}",
        "csa16.2",
    ],
    "carry_skip_adder.py": [
        "tmp = 8",
        "c4  = 10",
        "functional slack of c_in:  +1",
        "topological slack of c_in: -3",
    ],
    "ip_block_characterization.py": [
        "integrator[functional library]: system delay 24",
        "removes 18 units",
    ],
    "incremental_analysis.py": [
        "characterized ['csa_block2']",
        "characterized []",
    ],
    "sequential_clocking.py": [
        "topological analysis: 26",
        "functional (XBD0):    16",
        "critical endpoint: s7",
    ],
    "false_path_anatomy.py": [
        "c_out stable at 8",
        "no counterexample exists",
        "primitive MUX : stable at 1",
    ],
    "timing_meets_testability.py": [
        "untestable: ['skip/s-a-0']",
        "the redundancy WAS the speed",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    env = dict(os.environ, REPRO_EXAMPLE_FAST="1")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in EXPECTATIONS[script]:
        assert needle in result.stdout, (script, needle)


def test_every_example_has_expectations():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTATIONS)
