"""Unit tests for the .bench and BLIF parsers."""

import pytest

from repro.circuits.adders import carry_skip_block
from repro.circuits.iscaslike import C17_BENCH, c17
from repro.errors import ParseError
from repro.netlist.ops import networks_equivalent_on
from repro.parsers.bench import dumps_bench, loads_bench
from repro.parsers.blif import dumps_blif, loads_blif
from repro.sim.vectors import all_vectors, random_vectors


class TestBench:
    def test_c17_structure(self):
        net = c17()
        assert len(net.inputs) == 5
        assert net.outputs == ("G22", "G23")
        assert net.num_gates() == 6

    def test_c17_function_point(self):
        net = c17()
        vec = {"G1": True, "G2": True, "G3": True, "G6": True, "G7": True}
        values = net.output_values(vec)
        # G10=NAND(1,1)=0, G11=NAND(1,1)=0, G16=NAND(1,0)=1,
        # G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0
        assert values == {"G22": True, "G23": False}

    def test_roundtrip(self):
        net = c17()
        again = loads_bench(dumps_bench(net), name="c17")
        assert networks_equivalent_on(
            net, again, list(all_vectors(net.inputs))
        )

    def test_out_of_order_definitions(self):
        text = """
        INPUT(a)
        OUTPUT(z)
        z = NOT(mid)
        mid = NOT(a)
        """
        net = loads_bench(text)
        assert net.output_values({"a": True}) == {"z": True}

    def test_comments_and_blank_lines(self):
        text = "# hello\n\nINPUT(a)\nOUTPUT(z)\nz = BUFF(a)  # trailing\n"
        net = loads_bench(text)
        assert net.output_values({"a": False}) == {"z": False}

    def test_dff_rejected(self):
        with pytest.raises(ParseError, match="sequential"):
            loads_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            loads_bench("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n")

    def test_undefined_signal_rejected(self):
        with pytest.raises(ParseError, match="undefined"):
            loads_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(ghost)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(ParseError):
            loads_bench("INPUT(a)\nwhat is this\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(ParseError):
            loads_bench("INPUT(a)\nOUTPUT(zz)\n")


class TestBlif:
    def test_simple_and(self):
        net = loads_blif(
            ".model tiny\n.inputs a b\n.outputs z\n"
            ".names a b z\n11 1\n.end\n"
        )
        assert net.output_values({"a": True, "b": True}) == {"z": True}
        assert net.output_values({"a": True, "b": False}) == {"z": False}

    def test_multi_cube_sop(self):
        # z = a·b + ¬a·c
        net = loads_blif(
            ".model mux\n.inputs a b c\n.outputs z\n"
            ".names a b c z\n11- 1\n0-1 1\n.end\n"
        )
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    want = (a and b) or (not a and c)
                    assert net.output_values(
                        {"a": a, "b": b, "c": c}
                    ) == {"z": want}

    def test_off_set_table(self):
        # z defined by its zeros: z = 0 iff a=1,b=1  (i.e. z = NAND)
        net = loads_blif(
            ".model t\n.inputs a b\n.outputs z\n.names a b z\n11 0\n.end\n"
        )
        assert net.output_values({"a": True, "b": True}) == {"z": False}
        assert net.output_values({"a": False, "b": True}) == {"z": True}

    def test_constants(self):
        net = loads_blif(
            ".model k\n.inputs a\n.outputs one zero\n"
            ".names one\n1\n.names zero\n.names a sink\n1 1\n.end\n"
        )
        assert net.output_values({"a": False}) == {"one": True, "zero": False}

    def test_buffer_and_inverter(self):
        net = loads_blif(
            ".model b\n.inputs a\n.outputs y n\n"
            ".names a y\n1 1\n.names a n\n0 1\n.end\n"
        )
        assert net.output_values({"a": True}) == {"y": True, "n": False}

    def test_continuation_lines(self):
        net = loads_blif(
            ".model c\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n"
        )
        assert set(net.inputs) == {"a", "b"}

    def test_mixed_phase_rejected(self):
        with pytest.raises(ParseError, match="mixed"):
            loads_blif(
                ".model m\n.inputs a b\n.outputs z\n"
                ".names a b z\n11 1\n00 0\n.end\n"
            )

    def test_latch_rejected(self):
        with pytest.raises(ParseError, match="latch"):
            loads_blif(".model s\n.inputs a\n.outputs q\n.latch a q re clk 0\n")

    def test_bad_cube_width_rejected(self):
        with pytest.raises(ParseError, match="width"):
            loads_blif(
                ".model w\n.inputs a b\n.outputs z\n.names a b z\n1 1\n.end\n"
            )

    def test_roundtrip_carry_skip_block(self):
        block = carry_skip_block(2)
        again = loads_blif(dumps_blif(block))
        assert networks_equivalent_on(
            block, again, random_vectors(block.inputs, 32, seed=9)
        )

    def test_roundtrip_c17(self):
        net = c17()
        again = loads_blif(dumps_blif(net))
        assert networks_equivalent_on(
            net, again, list(all_vectors(net.inputs))
        )
