"""Unit tests for the compiled timing-graph kernel.

Covers the plan half (CSR layout, collapse rule, finite-delay
enforcement), the execute half (both backends, chunking, validation),
the incremental demand-driven graph, and golden equivalences between
the compiled and interpreted engines on the benchmark designs.
"""

import random

import pytest

from repro.api import AnalysisOptions
from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.core.instance_models import PerInstanceAnalyzer
from repro.core.timing_model import TimingModel
from repro.errors import AnalysisError
from repro.kernel import (
    HAVE_NUMPY,
    NUMPY_MIN_BATCH,
    CompiledTimingGraph,
    GraphState,
    NumpyExecutor,
    PythonExecutor,
    compile_design,
    compile_network,
    pick_backend,
    propagate_batch,
)
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.sta.topological import arrival_times, arrival_times_batch

NEG_INF = float("-inf")
POS_INF = float("inf")

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def tiny_design() -> HierDesign:
    """Two chained instances of a one-gate module."""
    net = Network("cell")
    a = net.add_input("a")
    b = net.add_input("b")
    net.add_gate("y", "AND", [a, b], delay=2.0)
    net.set_outputs(["y"])
    design = HierDesign("tiny")
    design.add_module(Module("cell", net))
    design.add_input("x1")
    design.add_input("x2")
    design.add_instance("u1", "cell", {"a": "x1", "b": "x2", "y": "n1"})
    design.add_instance("u2", "cell", {"a": "n1", "b": "x2", "y": "n2"})
    design.set_outputs(["n2"])
    return design


def models_from_tuples(tuples):
    """An ``instance_models`` callable serving one fixed model."""
    model = TimingModel(output="y", inputs=("a", "b"), tuples=tuples)
    return lambda inst_name: {"y": model}


class TestPlan:
    def test_compile_design_layout(self):
        design = tiny_design()
        plan = compile_design(design, models_from_tuples(((1.0, 2.0),)))
        plan.validate()
        assert plan.nets == ("x1", "x2", "n1", "n2")
        assert plan.n_inputs == 2
        assert plan.n_nodes == 2
        assert plan.n_tuples == 2
        assert plan.n_entries == 4
        row = propagate_batch(plan, [[0.0, 0.0]])[0]
        # n1 = max(0+1, 0+2) = 2; n2 = max(2+1, 0+2) = 3
        assert row == [0.0, 0.0, 2.0, 3.0]

    def test_unconstrained_entries_skipped(self):
        design = tiny_design()
        # Delay -inf on input a: only b constrains the output.
        plan = compile_design(design, models_from_tuples(((NEG_INF, 4.0),)))
        plan.validate()
        assert plan.n_entries == 2
        row = propagate_batch(plan, [[100.0, 1.0]])[0]
        # n1 = x2 + 4 = 5; n2 = x2 + 4 = 5 (a-side unconstrained)
        assert row[2:] == [5.0, 5.0]

    def test_all_unconstrained_tuple_collapses_node(self):
        design = tiny_design()
        # One tuple certifies unconditional stability -> constant -inf,
        # even though another tuple is present.
        plan = compile_design(
            design,
            models_from_tuples(((NEG_INF, NEG_INF), (1.0, 1.0))),
        )
        plan.validate()
        assert plan.n_tuples == 0
        row = propagate_batch(plan, [[3.0, 7.0]])[0]
        assert row[2:] == [NEG_INF, NEG_INF]

    def test_min_over_tuples(self):
        design = tiny_design()
        plan = compile_design(
            design, models_from_tuples(((5.0, NEG_INF), (NEG_INF, 1.0)))
        )
        row = propagate_batch(plan, [[0.0, 0.0]])[0]
        # n1 = min(max(0+5), max(0+1)) = 1; n2 = min(1+5, 0+1) = 1
        assert row[2:] == [1.0, 1.0]

    @pytest.mark.parametrize("bad", [POS_INF, float("nan")])
    def test_non_finite_delay_rejected(self, bad):
        design = tiny_design()
        with pytest.raises(AnalysisError, match="non-finite delay"):
            compile_design(design, models_from_tuples(((bad, 1.0),)))

    def test_compile_network_matches_arrival_times(self):
        net = carry_skip_block(2)
        plan = compile_network(net)
        plan.validate()
        arrival = {net.inputs[0]: 2.5}
        row = [arrival.get(x, 0.0) for x in plan.nets[: plan.n_inputs]]
        got = dict(zip(plan.nets, propagate_batch(plan, [row])[0]))
        assert got == arrival_times(net, arrival)

    def test_hier_compile_plan_validates(self):
        compiled = HierarchicalAnalyzer(cascade_adder(8, 2)).compile()
        compiled.plan.validate()
        assert compiled.inputs == compiled.plan.nets[: compiled.plan.n_inputs]


class TestExecute:
    def _plan_and_rows(self, n_rows):
        net = carry_skip_block(2)
        plan = compile_network(net)
        rng = random.Random(7)
        rows = [
            [rng.uniform(-3.0, 9.0) for _ in range(plan.n_inputs)]
            for _ in range(n_rows)
        ]
        return plan, rows

    @needs_numpy
    def test_backends_bit_identical(self):
        plan, rows = self._plan_and_rows(13)
        py = PythonExecutor(plan).propagate(rows)
        np_ = NumpyExecutor(plan).propagate(rows)
        assert py == np_

    @needs_numpy
    def test_chunking_preserves_results(self):
        plan, rows = self._plan_and_rows(11)
        whole = propagate_batch(plan, rows, backend="numpy")
        chunked = propagate_batch(plan, rows, backend="numpy", batch_size=3)
        assert whole == chunked

    def test_empty_batch(self):
        plan, _ = self._plan_and_rows(0)
        assert propagate_batch(plan, []) == []

    def test_row_length_validated(self):
        plan, _ = self._plan_and_rows(0)
        with pytest.raises(ValueError):
            PythonExecutor(plan).propagate([[0.0]])

    @needs_numpy
    def test_row_shape_validated_numpy(self):
        plan, _ = self._plan_and_rows(0)
        with pytest.raises(ValueError):
            NumpyExecutor(plan).propagate([[0.0]])

    def test_pick_backend_auto(self):
        assert pick_backend(1) == "python"
        if HAVE_NUMPY:
            assert pick_backend(NUMPY_MIN_BATCH) == "numpy"
        assert pick_backend(NUMPY_MIN_BATCH - 1) == "python"

    def test_pick_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            pick_backend(4, "fortran")


def small_graph():
    graph = CompiledTimingGraph(
        nets=["a", "b", "m", "o"],
        edges=[
            ("a", "m", "am", 3.0),
            ("b", "m", "bm", 1.0),
            ("m", "o", "mo", 2.0),
        ],
        inputs=["a", "b"],
        outputs=["o"],
    )
    return graph


class TestTimingGraph:
    def test_run_full(self):
        state = GraphState(small_graph(), {"a": 1.0})
        state.run_full()
        assert state.at_dict() == {"a": 1.0, "b": 0.0, "m": 4.0, "o": 6.0}
        assert state.deadline == 6.0
        assert state.rt_dict() == {"a": 1.0, "b": 3.0, "m": 4.0, "o": 6.0}

    def test_reflow_matches_full(self):
        graph = small_graph()
        state = GraphState(graph, {"a": 1.0})
        state.run_full()
        dirty = graph.set_key_weight("am", 0.5)
        state.reflow(dirty)
        fresh = GraphState(graph, {"a": 1.0})
        fresh.run_full()
        assert state.at == fresh.at
        assert state.rt == fresh.rt
        assert state.deadline == fresh.deadline

    def test_reflow_skips_backward_when_deadline_unmoved(self):
        graph = small_graph()
        state = GraphState(graph, {"a": 1.0})
        state.run_full()
        assert state.full_backward_passes == 1
        # b -> m is slack-covered; lowering it moves nothing.
        state.reflow(graph.set_key_weight("bm", 0.5))
        assert state.full_backward_passes == 1
        assert state.reflow_backward_nodes > 0

    def test_weight_may_only_decrease(self):
        graph = small_graph()
        graph.set_key_weight("am", 2.0)
        with pytest.raises(AnalysisError, match="only decrease"):
            graph.set_key_weight("am", 2.5)

    def test_unknown_key_rejected(self):
        with pytest.raises(AnalysisError, match="unknown edge key"):
            small_graph().set_key_weight("zz", 0.0)

    def test_topological_order_enforced(self):
        with pytest.raises(AnalysisError, match="topological order"):
            CompiledTimingGraph(
                nets=["a", "z"],
                edges=[("z", "a", "k", 1.0)],
                inputs=["a"],
                outputs=["z"],
            )

    def test_inputs_must_prefix_nets(self):
        with pytest.raises(AnalysisError, match="primary inputs"):
            CompiledTimingGraph(
                nets=["z", "a"], edges=[], inputs=["a"], outputs=["z"]
            )

    def test_neg_inf_weight_disables_edge(self):
        graph = small_graph()
        state = GraphState(graph, {})
        state.run_full()
        state.reflow(graph.set_key_weight("am", NEG_INF))
        fresh = GraphState(graph, {})
        fresh.run_full()
        assert state.at == fresh.at
        assert state.at_dict()["m"] == 1.0

    def test_critical_edges_in_order(self):
        graph = small_graph()
        state = GraphState(graph, {})
        state.run_full()
        # Critical path is a -> m -> o (a and b tie at 0.0 arrivals,
        # but b's edge is slack-covered: 0 + 1 != 3).
        crit = state.critical_edge_ids()
        assert crit == [0, 2]


class TestGoldenEquivalence:
    """Compiled engine is bit-identical to the interpreter."""

    @pytest.fixture(scope="class")
    def design(self):
        return cascade_adder(8, 2)

    def test_hier_single_scenario(self, design):
        interp = HierarchicalAnalyzer(
            design, options=AnalysisOptions(exec_engine="interpreted")
        ).analyze({"c_in": 2.0})
        comp = HierarchicalAnalyzer(
            design, options=AnalysisOptions(exec_engine="compiled")
        ).analyze({"c_in": 2.0})
        assert comp.net_times == interp.net_times
        assert comp.delay == interp.delay

    def test_hier_batch(self, design):
        rng = random.Random(3)
        scenarios = [
            {x: rng.uniform(0.0, 6.0) for x in design.inputs}
            for _ in range(12)
        ]
        analyzer = HierarchicalAnalyzer(design)
        interp = analyzer.analyze_batch(scenarios, backend="python")
        comp = analyzer.analyze_batch(scenarios)
        for a, b in zip(interp, comp):
            assert a.net_times == b.net_times
            assert a.slacks == b.slacks
        assert interp.delay == comp.delay

    def test_demand_engines(self, design):
        interp = DemandDrivenAnalyzer(design).analyze(
            {"c_in": 1.0}, exec_engine="interpreted"
        )
        comp = DemandDrivenAnalyzer(design).analyze(
            {"c_in": 1.0}, exec_engine="compiled"
        )
        assert comp.net_times == interp.net_times
        assert comp.delay == interp.delay
        assert comp.sta_passes == interp.sta_passes
        assert comp.refined_weights == interp.refined_weights
        assert comp.required_times == interp.required_times

    def test_per_instance_compile(self, design):
        analyzer = PerInstanceAnalyzer(design)
        interp = analyzer.analyze()
        comp = analyzer.compile().propagate([{}])[0]
        assert comp == interp.net_times

    def test_sta_batch(self):
        net = carry_skip_block(3)
        scenarios = [{}, {net.inputs[0]: 4.0}, {net.inputs[1]: -2.0}]
        batch = arrival_times_batch(net, scenarios)
        assert batch == [arrival_times(net, s) for s in scenarios]

    def test_compile_handle_cached_and_forced(self, design):
        analyzer = HierarchicalAnalyzer(design)
        first = analyzer.compile()
        assert analyzer.compile() is first
        assert analyzer.compile(force=True) is not first
