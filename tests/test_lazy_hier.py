"""Tests for per-output lazy characterization (observability pruning)."""

import pytest

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.core.hier import HierarchicalAnalyzer
from repro.errors import AnalysisError
from repro.netlist.hierarchy import HierDesign, Module


def carry_only_design(blocks: int = 4) -> HierDesign:
    """A cascade exposing ONLY the final carry: sum outputs are dead."""
    design = HierDesign("carry_only")
    module = Module("blk", carry_skip_block(2))
    design.add_module(module)
    design.add_input("c_in")
    for i in range(2 * blocks):
        design.add_input(f"a{i}")
        design.add_input(f"b{i}")
    carry = "c_in"
    for blk in range(blocks):
        conns = {"c_in": carry}
        for i in range(2):
            bit = 2 * blk + i
            conns[f"a{i}"] = f"a{bit}"
            conns[f"b{i}"] = f"b{bit}"
            conns[f"s{i}"] = f"s{bit}"  # dangling nets
        carry = f"c{2 * (blk + 1)}"
        conns["c_out"] = carry
        design.add_instance(f"u{blk}", "blk", conns)
    design.set_outputs([carry])
    design.validate()
    return design


class TestAnalyzeLazy:
    def test_matches_full_analysis(self):
        design = cascade_adder(8, 2)
        full = HierarchicalAnalyzer(design).analyze()
        lazy = HierarchicalAnalyzer(design).analyze_lazy()
        assert lazy.delay == full.delay
        for out in design.outputs:
            assert lazy.output_times[out] == full.output_times[out]

    def test_skips_dead_outputs(self):
        design = carry_only_design()
        analyzer = HierarchicalAnalyzer(design)
        result = analyzer.analyze_lazy()
        # only c_out was ever characterized; s0/s1 models never built
        assert set(analyzer._models["blk"]) == {"c_out"}
        assert result.delay == 2 * 4 + 6  # the closed form

    def test_dead_nets_absent_from_net_times(self):
        design = carry_only_design()
        result = HierarchicalAnalyzer(design).analyze_lazy()
        assert "s0" not in result.net_times
        assert "c8" in result.net_times

    def test_model_for_single_output(self):
        design = cascade_adder(4, 2)
        analyzer = HierarchicalAnalyzer(design)
        model = analyzer.model_for("csa_block2", "c_out")
        assert model.tuples == ((2.0, 8.0, 8.0, 6.0, 6.0),)
        assert set(analyzer._models["csa_block2"]) == {"c_out"}

    def test_model_for_unknown_port(self):
        design = cascade_adder(4, 2)
        analyzer = HierarchicalAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.model_for("csa_block2", "ghost")

    def test_models_for_completes_partial_cache(self):
        design = cascade_adder(4, 2)
        analyzer = HierarchicalAnalyzer(design)
        analyzer.model_for("csa_block2", "c_out")
        models = analyzer.models_for("csa_block2")
        assert set(models) == {"s0", "s1", "c_out"}

    def test_lazy_topological_mode(self):
        design = carry_only_design()
        analyzer = HierarchicalAnalyzer(design, functional=False)
        result = analyzer.analyze_lazy()
        # topological: 6 per block chained... c_in->c_out topo is 6,
        # first block's a0 path is 8
        assert result.delay == 8.0 + 6.0 * 3

    def test_lazy_after_preload_uses_preloaded(self):
        from repro.core.required import characterize_network

        design = carry_only_design()
        models = characterize_network(carry_skip_block(2))
        analyzer = HierarchicalAnalyzer(design)
        analyzer.preload_models("blk", models)
        result = analyzer.analyze_lazy()
        assert result.characterized_modules == ()
        assert result.delay == 14.0
