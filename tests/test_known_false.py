"""Tests for the known-false-subgraph (Belkhale-Suess) baseline."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.demand import DemandDrivenAnalyzer, flat_functional_delay
from repro.core.hier import HierarchicalAnalyzer
from repro.errors import AnalysisError
from repro.sta.known_false import (
    KnownFalseAnalyzer,
    annotations_from_models,
)

NEG_INF = float("-inf")


@pytest.fixture(scope="module")
def design():
    return cascade_adder(8, 2)


class TestUnannotated:
    def test_matches_topological(self, design):
        analyzer = KnownFalseAnalyzer(design)
        result = analyzer.analyze()
        demand = DemandDrivenAnalyzer(design).analyze()
        assert result.delay == demand.topological_delay
        assert result.applied == ()

    def test_arrival_condition(self, design):
        analyzer = KnownFalseAnalyzer(design)
        base = analyzer.analyze().delay
        shifted = analyzer.analyze(
            arrival={x: 2.0 for x in design.inputs}
        ).delay
        assert shifted == base + 2.0


class TestManualAnnotations:
    def test_designer_asserts_skip_delay(self, design):
        """The classic manual assertion: carry in->out of a skip block
        is effectively 2 — the exact fact the paper automates."""
        analyzer = KnownFalseAnalyzer(design)
        annotated = analyzer.analyze(
            {("csa_block2", "c_in", "c_out"): 2.0}
        )
        assert annotated.applied == ((("csa_block2", "c_in", "c_out")),)
        demand = DemandDrivenAnalyzer(design).analyze()
        assert annotated.delay == demand.delay  # 16 for csa8.2

    def test_wrong_assertion_is_trusted(self, design):
        """[1]'s hazard: a wrong manual assertion silently underestimates."""
        analyzer = KnownFalseAnalyzer(design)
        reckless = analyzer.analyze(
            {("csa_block2", "a0", "c_out"): 0.0,
             ("csa_block2", "b0", "c_out"): 0.0,
             ("csa_block2", "c_in", "c_out"): 0.0}
        )
        flat_delay, _, _ = flat_functional_delay(design)
        assert reckless.delay < flat_delay  # optimism, exactly the danger

    def test_unknown_pin_pair_rejected(self, design):
        analyzer = KnownFalseAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.analyze({("csa_block2", "a1", "s0"): 1.0})

    def test_neg_inf_assertion_on_missing_pair_is_noop(self, design):
        analyzer = KnownFalseAnalyzer(design)
        result = analyzer.analyze({("csa_block2", "a1", "s0"): NEG_INF})
        assert result.applied == ()


class TestAutomation:
    def test_annotations_from_models_are_safe(self, design):
        hier = HierarchicalAnalyzer(design)
        hier.characterize_all()
        annotations = annotations_from_models(hier._models)
        analyzer = KnownFalseAnalyzer(design)
        annotated = analyzer.analyze(annotations)
        flat_delay, _, _ = flat_functional_delay(design)
        demand = DemandDrivenAnalyzer(design).analyze()
        # never optimistic w.r.t. the true delay...
        assert annotated.delay >= flat_delay - 1e-9
        # ...and no looser than plain topological
        assert annotated.delay <= demand.topological_delay + 1e-9
        # on the cascades, worst-per-pin-pair already captures the skip
        assert annotated.delay == demand.delay

    def test_automation_covers_all_model_pairs(self, design):
        hier = HierarchicalAnalyzer(design)
        hier.characterize_all()
        annotations = annotations_from_models(hier._models)
        assert ("csa_block2", "c_in", "c_out") in annotations
        assert annotations[("csa_block2", "c_in", "c_out")] == 2.0
        assert annotations[("csa_block2", "a0", "c_out")] == 8.0
