"""Tests for the persistent model library (signatures, store, scheduler)."""

import json

import pytest

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.cli import main
from repro.core.hier import HierarchicalAnalyzer, IncrementalAnalyzer
from repro.core.required import characterize_network
from repro.library import (
    FORMAT_NAME,
    FORMAT_VERSION,
    ModelLibrary,
    characterize_design,
    characterize_modules,
    characterize_network_parallel,
    design_signatures,
    module_signature,
    network_signature,
)
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.parsers.verilog import dumps_verilog

from tests.conftest import make_false_path_circuit


def renamed_copy(net: Network, prefix: str = "r") -> Network:
    """Same structure, every signal (ports included) renamed."""
    out = Network(f"{net.name}.renamed")
    mapping: dict[str, str] = {}
    for i, x in enumerate(net.inputs):
        mapping[x] = out.add_input(f"{prefix}_in{i}")
    for sig in net.topological_order():
        if net.is_input(sig):
            continue
        g = net.gate(sig)
        mapping[sig] = out.add_gate(
            f"{prefix}_{sig}_x",
            g.gtype,
            [mapping[f] for f in g.fanins],
            g.delay,
        )
    out.set_outputs([mapping[o] for o in net.outputs])
    return out


def tiny_module(name: str, gtype: str = "AND", delay: float = 1.0) -> Module:
    net = Network(name)
    net.add_inputs(["a", "b"])
    net.add_gate("z", gtype, ["a", "b"], delay)
    net.set_outputs(["z"])
    return Module(name, net)


def multi_module_design() -> HierDesign:
    """Four instances over three distinct structures (one pair of twins)."""
    d = HierDesign("multi")
    d.add_module(tiny_module("m_and", "AND"))
    d.add_module(tiny_module("m_and_twin", "AND"))  # same structure
    d.add_module(tiny_module("m_or", "OR", 2.0))
    d.add_module(Module("m_fp", make_false_path_circuit()))
    for i in range(1, 5):
        d.add_input(f"i{i}")
    d.add_instance("u1", "m_and", {"a": "i1", "b": "i2", "z": "n1"})
    d.add_instance("u2", "m_or", {"a": "n1", "b": "i3", "z": "n2"})
    d.add_instance("u3", "m_fp", {"s": "i4", "a": "n2", "z": "n3"})
    d.add_instance("u4", "m_and_twin", {"a": "i1", "b": "i3", "z": "n4"})
    d.set_outputs(["n3", "n4"])
    return d


def model_tuples(models):
    return {out: m.tuples for out, m in models.items()}


class TestSignature:
    def test_stable_under_renaming(self, csa_block2):
        assert network_signature(csa_block2) == network_signature(
            renamed_copy(csa_block2)
        )

    def test_stable_under_insertion_order(self):
        a = Network("order_a")
        a.add_inputs(["x", "y"])
        a.add_gate("g1", "AND", ["x", "y"])
        a.add_gate("g2", "OR", ["x", "y"])
        a.add_gate("z", "XOR", ["g1", "g2"])
        a.set_outputs(["z"])
        b = Network("order_b")
        b.add_inputs(["x", "y"])
        b.add_gate("g2", "OR", ["x", "y"])  # independent gates swapped
        b.add_gate("g1", "AND", ["x", "y"])
        b.add_gate("z", "XOR", ["g1", "g2"])
        b.set_outputs(["z"])
        assert network_signature(a) == network_signature(b)

    def test_sensitive_to_delay_and_type(self):
        assert network_signature(
            tiny_module("m", "AND", 1.0).network
        ) != network_signature(tiny_module("m", "AND", 2.0).network)
        assert network_signature(
            tiny_module("m", "AND").network
        ) != network_signature(tiny_module("m", "OR").network)

    def test_dangling_gates_ignored(self, csa_block2):
        padded = csa_block2.copy("padded")
        padded.add_gate("unused", "NOT", [padded.inputs[0]], 5.0)
        assert network_signature(padded) == network_signature(csa_block2)

    def test_parameters_change_key(self, csa_block2):
        mod = Module("m", csa_block2)
        base = module_signature(mod)
        assert module_signature(mod, engine="bdd") != base
        assert module_signature(mod, max_orders=2) != base
        assert module_signature(mod, max_tuples=4) != base
        assert module_signature(mod) == base  # deterministic

    def test_design_signatures_share_twins(self):
        sigs = design_signatures(multi_module_design())
        assert set(sigs) == {"m_and", "m_and_twin", "m_or", "m_fp"}
        assert sigs["m_and"] == sigs["m_and_twin"]
        assert len(set(sigs.values())) == 3


class TestStore:
    @pytest.fixture()
    def block_models(self, csa_block2):
        return characterize_network(csa_block2)

    def test_round_trip_disk(self, tmp_path, csa_block2, block_models):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        fresh = ModelLibrary(tmp_path / "cache")
        got = fresh.lookup(sig, csa_block2.inputs, csa_block2.outputs)
        assert model_tuples(got) == model_tuples(block_models)
        assert fresh.stats.disk_hits == 1

    def test_round_trip_rekeys_ports(self, tmp_path, csa_block2, block_models):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        renamed = renamed_copy(csa_block2)
        got = lib.lookup(sig, renamed.inputs, renamed.outputs)
        assert tuple(got) == renamed.outputs
        for j, out in enumerate(renamed.outputs):
            assert got[out].inputs == renamed.inputs
            assert got[out].tuples == block_models[csa_block2.outputs[j]].tuples

    def test_memory_only(self, csa_block2, block_models):
        lib = ModelLibrary()
        sig = module_signature(Module("b", csa_block2))
        assert lib.path_for(sig) is None
        assert lib.lookup(sig, csa_block2.inputs, csa_block2.outputs) is None
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        got = lib.lookup(sig, csa_block2.inputs, csa_block2.outputs)
        assert model_tuples(got) == model_tuples(block_models)
        assert lib.stats.memory_hits == 1 and lib.stats.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, csa_block2, block_models):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        lib.path_for(sig).write_text("{ not json")
        fresh = ModelLibrary(tmp_path / "cache")
        assert fresh.lookup(sig, csa_block2.inputs, csa_block2.outputs) is None
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.misses == 1
        # a store heals the bad entry in place
        fresh.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        healed = ModelLibrary(tmp_path / "cache")
        assert (
            healed.lookup(sig, csa_block2.inputs, csa_block2.outputs)
            is not None
        )

    def test_schema_version_mismatch(self, tmp_path, csa_block2, block_models):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        path = lib.path_for(sig)
        doc = json.loads(path.read_text())
        doc["version"] = FORMAT_VERSION + 999
        path.write_text(json.dumps(doc))
        fresh = ModelLibrary(tmp_path / "cache")
        assert fresh.lookup(sig, csa_block2.inputs, csa_block2.outputs) is None
        assert fresh.stats.schema_mismatches == 1

    def test_foreign_format_rejected(self, tmp_path, csa_block2):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.path_for(sig).write_text(json.dumps({"format": "other"}))
        assert lib.lookup(sig, csa_block2.inputs, csa_block2.outputs) is None
        assert lib.stats.schema_mismatches == 1

    def test_arity_mismatch_rejected(self, tmp_path, csa_block2, block_models):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        fresh = ModelLibrary(tmp_path / "cache")
        wrong = ("just_one_input",)
        assert fresh.lookup(sig, wrong, csa_block2.outputs) is None
        assert fresh.stats.corrupt_entries == 1

    def test_lru_eviction_falls_back_to_disk(self, tmp_path):
        lib = ModelLibrary(tmp_path / "cache", max_memory_entries=1)
        for name, gtype in (("a", "AND"), ("b", "OR")):
            mod = tiny_module(name, gtype)
            models = characterize_network(mod.network)
            lib.store(
                module_signature(mod), mod.inputs, mod.outputs, models
            )
        assert lib.stats.evictions == 1
        assert len(lib) == 1
        evicted = tiny_module("a", "AND")
        got = lib.lookup(
            module_signature(evicted), evicted.inputs, evicted.outputs
        )
        assert got is not None
        assert lib.stats.disk_hits == 1

    def test_disk_payload_shape(self, tmp_path, csa_block2, block_models):
        lib = ModelLibrary(tmp_path / "cache")
        sig = module_signature(Module("b", csa_block2))
        lib.store(sig, csa_block2.inputs, csa_block2.outputs, block_models)
        doc = json.loads(lib.path_for(sig).read_text())
        assert doc["format"] == FORMAT_NAME
        assert doc["version"] == FORMAT_VERSION
        assert doc["signature"] == sig
        assert doc["num_inputs"] == len(csa_block2.inputs)
        assert len(doc["models"]) == len(csa_block2.outputs)
        # no stray temp files left behind by the atomic write
        leftovers = [
            p for p in (tmp_path / "cache").iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestScheduler:
    def test_serial_matches_characterize_network(self):
        design = multi_module_design()
        results = characterize_design(design)
        for name, module in design.modules.items():
            assert model_tuples(results[name]) == model_tuples(
                characterize_network(module.network)
            )

    @pytest.mark.slow
    def test_parallel_determinism(self):
        design = multi_module_design()
        serial = characterize_design(design, jobs=1)
        parallel = characterize_design(design, jobs=4)
        assert {n: model_tuples(m) for n, m in serial.items()} == {
            n: model_tuples(m) for n, m in parallel.items()
        }

    def test_twins_characterized_once(self):
        design = multi_module_design()
        lib = ModelLibrary()
        results = characterize_modules(design.modules, library=lib)
        assert lib.stats.characterizations == 3  # twins share one
        assert results["m_and_twin"]["z"].inputs == ("a", "b")
        assert (
            results["m_and_twin"]["z"].tuples
            == results["m_and"]["z"].tuples
        )

    def test_library_short_circuits_second_run(self, tmp_path):
        design = multi_module_design()
        lib = ModelLibrary(tmp_path / "cache")
        characterize_design(design, library=lib)
        again = ModelLibrary(tmp_path / "cache")
        results = characterize_design(design, library=again)
        assert again.stats.characterizations == 0
        assert again.stats.hits == len(design.modules)
        assert model_tuples(results["m_fp"]) == model_tuples(
            characterize_network(design.modules["m_fp"].network)
        )

    @pytest.mark.slow
    def test_network_parallel_matches_serial(self, csa_block2):
        serial = characterize_network(csa_block2)
        parallel = characterize_network_parallel(csa_block2, jobs=4)
        assert model_tuples(serial) == model_tuples(parallel)

    def test_network_parallel_uses_library(self, tmp_path, csa_block2):
        lib = ModelLibrary(tmp_path / "cache")
        first = characterize_network_parallel(csa_block2, library=lib)
        assert lib.stats.characterizations == 1
        again = ModelLibrary(tmp_path / "cache")
        second = characterize_network_parallel(csa_block2, library=again)
        assert again.stats.characterizations == 0
        assert model_tuples(first) == model_tuples(second)


class TestAnalyzerIntegration:
    def test_cache_hit_short_circuits_step1(self, tmp_path):
        design = cascade_adder(8, 2)
        baseline = HierarchicalAnalyzer(cascade_adder(8, 2)).analyze()
        cold = ModelLibrary(tmp_path / "cache")
        first = HierarchicalAnalyzer(design, library=cold).analyze()
        assert cold.stats.characterizations == 1
        warm = ModelLibrary(tmp_path / "cache")
        second = HierarchicalAnalyzer(
            cascade_adder(8, 2), library=warm
        ).analyze()
        assert warm.stats.characterizations == 0
        assert warm.stats.hits == 1
        # a hit still counts as freshly installed models for this run
        assert second.characterized_modules == ("csa_block2",)
        assert second.net_times == first.net_times == baseline.net_times

    def test_corrupted_cache_degrades_gracefully(self, tmp_path):
        design = cascade_adder(8, 2)
        baseline = HierarchicalAnalyzer(cascade_adder(8, 2)).analyze()
        lib = ModelLibrary(tmp_path / "cache")
        HierarchicalAnalyzer(design, library=lib).analyze()
        for entry in (tmp_path / "cache").iterdir():
            entry.write_text("\x00 garbage \x00")
        recover = ModelLibrary(tmp_path / "cache")
        result = HierarchicalAnalyzer(
            cascade_adder(8, 2), library=recover
        ).analyze()
        assert recover.stats.corrupt_entries == 1
        assert recover.stats.characterizations == 1
        assert result.net_times == baseline.net_times

    def test_analyze_lazy_hits_library(self, tmp_path):
        design = cascade_adder(8, 2)
        lib = ModelLibrary(tmp_path / "cache")
        eager = HierarchicalAnalyzer(design, library=lib).analyze()
        warm = ModelLibrary(tmp_path / "cache")
        lazy = HierarchicalAnalyzer(
            cascade_adder(8, 2), library=warm
        ).analyze_lazy()
        assert warm.stats.characterizations == 0
        assert lazy.output_times == eager.output_times

    @pytest.mark.slow
    def test_parallel_jobs_same_result(self):
        design = multi_module_design()
        serial = HierarchicalAnalyzer(design).analyze()
        parallel = HierarchicalAnalyzer(
            multi_module_design(), jobs=4
        ).analyze()
        assert parallel.net_times == serial.net_times
        assert set(parallel.characterized_modules) == set(serial.characterized_modules)

    def test_topological_mode_skips_library(self, tmp_path):
        lib = ModelLibrary(tmp_path / "cache")
        HierarchicalAnalyzer(
            cascade_adder(8, 2), functional=False, library=lib
        ).analyze()
        assert lib.stats.hits == lib.stats.misses == lib.stats.stores == 0

    def test_incremental_eco_round_trip(self, tmp_path):
        lib = ModelLibrary(tmp_path / "cache")
        analyzer = IncrementalAnalyzer(cascade_adder(8, 2), library=lib)
        base = analyzer.analyze()
        eco = carry_skip_block(2).with_delays(
            lambda g: g.delay + 1.0, name="csa_block2_eco"
        )
        analyzer.replace_module("csa_block2", eco)
        bumped = analyzer.analyze()
        assert bumped.delay > base.delay
        assert lib.stats.characterizations == 2
        # reverting to the original structure is served from the library
        analyzer.replace_module("csa_block2", carry_skip_block(2))
        reverted = analyzer.analyze()
        assert reverted.delay == base.delay
        assert lib.stats.characterizations == 2
        assert analyzer.recharacterizations["csa_block2"] == 3

    def test_design_replace_module_rejects_interface_change(self):
        design = cascade_adder(8, 2)
        wrong = tiny_module("csa_block2").network
        with pytest.raises(Exception):
            design.replace_module("csa_block2", wrong)


class TestCLI:
    @pytest.fixture()
    def verilog_file(self, tmp_path):
        design = cascade_adder(8, 2)
        design.name = "csa8_2"
        f = tmp_path / "csa8_2.v"
        f.write_text(dumps_verilog(design))
        return str(f)

    def test_hier_report_second_run_zero_characterizations(
        self, verilog_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(["hier-report", verilog_file, "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "model library" in first
        assert "characterizations    : 1" in first
        assert main(["hier-report", verilog_file, "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "characterizations    : 0" in second
        assert "hits                 : 1" in second

        def delays(text):
            return [l for l in text.splitlines() if "estimated delay" in l]

        assert delays(first) == delays(second)

    def test_hier_report_default_path_unchanged(self, verilog_file, capsys):
        assert main(["hier-report", verilog_file]) == 0
        out = capsys.readouterr().out
        assert "model library" not in out
        assert "pessimism removed" in out

    def test_characterize_cache_identical_output(
        self, tmp_path, capsys
    ):
        from repro.parsers.blif import dumps_blif

        blif = tmp_path / "csa.blif"
        blif.write_text(dumps_blif(carry_skip_block(2)))
        cache = str(tmp_path / "cache")
        out1 = tmp_path / "lib1.json"
        out2 = tmp_path / "lib2.json"
        assert (
            main(
                [
                    "characterize",
                    str(blif),
                    "--cache-dir",
                    cache,
                    "-o",
                    str(out1),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "characterize",
                    str(blif),
                    "--cache-dir",
                    cache,
                    "-o",
                    str(out2),
                ]
            )
            == 0
        )
        assert out1.read_text() == out2.read_text()
        err = capsys.readouterr().err
        assert "1 hits, 0 characterizations" in err
