"""Unit tests for structural network utilities."""

from repro.circuits.adders import carry_skip_block
from repro.netlist.gates import GateType
from repro.netlist.network import Network
from repro.netlist.ops import depth, levelize, networks_equivalent_on, stats
from repro.sim.vectors import all_vectors


def test_levelize_simple_chain():
    net = Network()
    net.add_input("a")
    net.add_gate("g1", "NOT", ["a"])
    net.add_gate("g2", "NOT", ["g1"])
    net.set_outputs(["g2"])
    levels = levelize(net)
    assert levels == {"a": 0, "g1": 1, "g2": 2}


def test_levelize_takes_max_fanin_level():
    net = Network()
    net.add_inputs(["a", "b"])
    net.add_gate("deep", "NOT", ["a"])
    net.add_gate("z", "AND", ["deep", "b"])
    levels = levelize(net)
    assert levels["z"] == 2


def test_depth_of_carry_skip_block():
    # longest structural chain: p0 -> t0 -> c1 -> t1 -> c2 -> mux
    assert depth(carry_skip_block(2)) == 6


def test_depth_empty_outputs():
    assert depth(Network()) == 0


def test_stats_counts():
    block = carry_skip_block(2)
    st = stats(block)
    assert st.num_inputs == 5
    assert st.num_outputs == 3
    assert st.num_gates == 12
    assert st.gate_counts[GateType.MUX] == 1
    assert st.gate_counts[GateType.XOR] == 4
    assert st.gate_counts[GateType.AND] == 5  # g0,g1,t0,t1,skip
    assert st.gate_counts[GateType.OR] == 2


def test_networks_equivalent_on_detects_difference():
    a = Network("x")
    a.add_inputs(["p", "q"])
    a.add_gate("z", "AND", ["p", "q"])
    a.set_outputs(["z"])
    b = Network("y")
    b.add_inputs(["p", "q"])
    b.add_gate("z", "OR", ["p", "q"])
    b.set_outputs(["z"])
    vectors = list(all_vectors(["p", "q"]))
    assert not networks_equivalent_on(a, b, vectors)
    assert networks_equivalent_on(a, a.copy(), vectors)


def test_networks_equivalent_requires_same_interface():
    a = Network("x")
    a.add_input("p")
    a.add_gate("z", "BUF", ["p"])
    a.set_outputs(["z"])
    b = Network("y")
    b.add_inputs(["p", "q"])
    b.add_gate("z", "BUF", ["p"])
    b.set_outputs(["z"])
    assert not networks_equivalent_on(a, b, [])
