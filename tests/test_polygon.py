"""Tests for the polygon picture (Figures 3-5)."""

import pytest

from repro.core.polygon import (
    place_polygon,
    render_polygon_ascii,
    stack_cascade,
)
from repro.core.timing_model import NEG_INF, POS_INF, TimingModel
from repro.errors import AnalysisError

COUT = TimingModel(
    "c_out",
    ("c_in", "a0", "b0", "a1", "b1"),
    ((2.0, 8.0, 8.0, 6.0, 6.0),),
)


class TestPlacement:
    def test_all_zero_arrivals(self):
        p = place_polygon(COUT, {})
        assert p.stable_time == 8.0
        assert set(p.critical) == {"a0", "b0"}
        assert p.bottoms == (6.0, 0.0, 0.0, 2.0, 2.0)

    def test_fig5_arrival(self):
        p = place_polygon(COUT, {"c_in": 5.0})
        assert p.stable_time == 8.0
        assert set(p.critical) == {"a0", "b0"}
        # c_in's column bottom sits at 6, one unit above its arrival of 5
        assert p.bottoms[0] == 6.0

    def test_late_cin_becomes_critical(self):
        p = place_polygon(COUT, {"c_in": 8.0})
        assert p.stable_time == 10.0
        assert p.critical == ("c_in",)

    def test_multi_tuple_picks_lowest(self):
        model = TimingModel("z", ("a", "b"), ((4.0, NEG_INF), (NEG_INF, 2.0)))
        p = place_polygon(model, {"a": 0.0, "b": 0.0})
        assert p.stable_time == 2.0
        assert p.tuple_index == 1
        assert p.bottoms[0] == POS_INF  # absent column in the chosen tuple


class TestStacking:
    def test_fig4_two_stages(self):
        placements = stack_cascade(
            [COUT, COUT], [("c_in", "c_out"), ("c_in", "c_out")], {}
        )
        assert placements[0].stable_time == 8.0
        assert placements[1].stable_time == 10.0
        assert placements[1].critical == ("c_in",)

    def test_chain_length_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            stack_cascade([COUT], [("c_in", "c_out"), ("c_in", "c_out")], {})

    def test_eight_stage_closed_form(self):
        """Paper: n cascaded 2-bit blocks -> last carry at 2n + 6."""
        for n in range(1, 9):
            placements = stack_cascade(
                [COUT] * n, [("c_in", "c_out")] * n, {}
            )
            assert placements[-1].stable_time == 2 * n + 6


class TestRender:
    def test_render_contains_key_facts(self):
        p = place_polygon(COUT, {"c_in": 5.0})
        text = render_polygon_ascii(p, {"c_in": 5.0})
        assert "stable" in text and "8" in text
        assert "c_in" in text and "a0" in text
        assert "critical inputs: a0, b0" in text

    def test_render_handles_absent_columns(self):
        model = TimingModel("z", ("a", "b"), ((1.0, NEG_INF),))
        p = place_polygon(model, {})
        text = render_polygon_ascii(p, {})
        assert "none" in text
