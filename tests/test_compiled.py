"""Tests for the compiled simulator."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.circuits.datapath import array_multiplier
from repro.circuits.random_logic import random_network
from repro.netlist.network import Network
from repro.sim.compiled import compile_network, fast_equivalence_sample
from repro.sim.vectors import all_vectors, random_vectors


class TestCompile:
    def test_matches_interpreter_exhaustively(self):
        net = carry_skip_block(2)
        sim = compile_network(net)
        for vec in all_vectors(net.inputs):
            assert sim(vec) == net.output_values(vec)

    def test_all_gate_types(self):
        net = Network("every")
        a, b, c = net.add_inputs(["a", "b", "c"])
        net.add_gate("g1", "AND", [a, b])
        net.add_gate("g2", "OR", [a, b, c])
        net.add_gate("g3", "NAND", [a, c])
        net.add_gate("g4", "NOR", [b, c])
        net.add_gate("g5", "XOR", [a, b, c])
        net.add_gate("g6", "XNOR", [a, b])
        net.add_gate("g7", "NOT", [a])
        net.add_gate("g8", "BUF", [b])
        net.add_gate("g9", "MUX", [a, b, c])
        net.add_gate("g10", "CONST0", [])
        net.add_gate("g11", "CONST1", [])
        net.set_outputs([f"g{i}" for i in range(1, 12)])
        sim = compile_network(net)
        for vec in all_vectors(net.inputs):
            assert sim(vec) == net.output_values(vec)

    def test_source_attached(self):
        net = carry_skip_block(2)
        sim = compile_network(net)
        assert "def _sim(vector):" in sim.source

    def test_mangling_handles_weird_names(self):
        net = Network("w")
        net.add_input("a.b$c")
        net.add_gate("out 1", "NOT", ["a.b$c"])
        net.set_outputs(["out 1"])
        sim = compile_network(net)
        assert sim({"a.b$c": True}) == {"out 1": False}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_networks(self, seed):
        net = random_network(5, 16, seed=seed, num_outputs=3)
        sim = compile_network(net)
        for vec in random_vectors(net.inputs, 12, seed=seed):
            assert sim(vec) == net.output_values(vec)

    def test_speedup_on_large_circuit(self):
        net = cascade_adder(16, 2).flatten()
        vectors = random_vectors(net.inputs, 200, seed=31)
        sim = compile_network(net)
        start = time.perf_counter()
        compiled_results = [sim(v) for v in vectors]
        compiled_time = time.perf_counter() - start
        start = time.perf_counter()
        interpreted = [net.output_values(v) for v in vectors]
        interpreted_time = time.perf_counter() - start
        assert compiled_results == interpreted
        # conservative bar: compiled must be at least 3x faster
        assert compiled_time * 3 < interpreted_time


class TestFastEquivalence:
    def test_detects_equality_and_difference(self):
        net = array_multiplier(3, 3)
        vectors = random_vectors(net.inputs, 64, seed=9)
        assert fast_equivalence_sample(net, net.copy(), vectors)
        from repro.netlist.transform import decompose_complex

        assert fast_equivalence_sample(
            net, decompose_complex(net), vectors
        )

    def test_interface_mismatch(self):
        a = Network("a")
        a.add_input("x")
        a.add_gate("z", "BUF", ["x"])
        a.set_outputs(["z"])
        b = Network("b")
        b.add_inputs(["x", "y"])
        b.add_gate("z", "BUF", ["x"])
        b.set_outputs(["z"])
        assert not fast_equivalence_sample(a, b, [])
