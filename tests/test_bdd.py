"""Unit and property tests for the ROBDD package."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.manager import BDDError, BDDManager


@pytest.fixture()
def mgr() -> BDDManager:
    return BDDManager()


class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.ZERO == 0 and mgr.ONE == 1
        assert mgr.negate(mgr.ONE) == mgr.ZERO

    def test_var_is_canonical(self, mgr):
        a1 = mgr.var("a")
        a2 = mgr.var("a")
        assert a1 == a2

    def test_declare_order(self, mgr):
        assert mgr.declare("a") == 0
        assert mgr.declare("b") == 1
        assert mgr.declare("a") == 0  # idempotent
        assert mgr.num_vars() == 2

    def test_undeclared_lookup_raises(self, mgr):
        with pytest.raises(BDDError):
            mgr.var_level("ghost")

    def test_reduction_no_redundant_nodes(self, mgr):
        a = mgr.var("a")
        # a OR NOT a == 1, reduced away completely
        assert mgr.disj(a, mgr.negate(a)) == mgr.ONE
        assert mgr.conj(a, mgr.negate(a)) == mgr.ZERO

    def test_idempotence_and_absorption(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.conj(a, a) == a
        assert mgr.disj(a, a) == a
        assert mgr.disj(a, mgr.conj(a, b)) == a

    def test_cofactors(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.conj(a, b)
        low, high = mgr.cofactors(f)
        assert low == mgr.ZERO
        assert high == b
        with pytest.raises(BDDError):
            mgr.cofactors(mgr.ONE)


class TestAlgebra:
    def test_xor_truth_table(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.xor(a, b)
        for va, vb in itertools.product((False, True), repeat=2):
            assert mgr.evaluate(f, {0: va, 1: vb}) == (va != vb)

    def test_conj_all_empty_is_one(self, mgr):
        assert mgr.conj_all([]) == mgr.ONE
        assert mgr.disj_all([]) == mgr.ZERO

    def test_restrict(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.disj(mgr.conj(a, b), c)
        assert mgr.restrict(f, {0: True}) == mgr.disj(b, c)
        assert mgr.restrict(f, {0: False}) == c
        assert mgr.restrict(f, {0: False, 2: False}) == mgr.ZERO

    def test_ite_base_cases(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.ite(mgr.ONE, a, b) == a
        assert mgr.ite(mgr.ZERO, a, b) == b
        assert mgr.ite(a, mgr.ONE, mgr.ZERO) == a


class TestQueries:
    def test_tautology_and_sat(self, mgr):
        a = mgr.var("a")
        assert mgr.is_tautology(mgr.ONE)
        assert not mgr.is_tautology(a)
        assert mgr.is_satisfiable(a)
        assert not mgr.is_satisfiable(mgr.ZERO)

    def test_any_model(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.conj(a, mgr.negate(b))
        model = mgr.any_model(f)
        assert model == {0: True, 1: False}
        assert mgr.any_model(mgr.ZERO) is None

    def test_support(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.conj(a, c)
        assert mgr.support(f) == {0, 2}
        assert mgr.support(mgr.ONE) == set()
        del b

    def test_count_models(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        assert mgr.count_models(mgr.conj(a, b), 3) == 2
        assert mgr.count_models(mgr.disj(a, b), 3) == 6
        assert mgr.count_models(mgr.ONE, 3) == 8
        assert mgr.count_models(mgr.ZERO, 3) == 0
        assert mgr.count_models(c, 3) == 4

    def test_iter_models(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.disj(a, b)
        models = list(mgr.iter_models(f, [0, 1]))
        assert len(models) == 3
        for m in models:
            assert mgr.evaluate(f, m)

    def test_evaluate_missing_level_raises(self, mgr):
        a = mgr.var("a")
        with pytest.raises(BDDError):
            mgr.evaluate(a, {})


def test_node_limit():
    small = BDDManager(max_nodes=4)
    with pytest.raises(BDDError):
        # XOR chain blows past 4 nodes quickly
        acc = small.var(0)
        for level in range(1, 10):
            acc = small.xor(acc, small.var(level))


# ---------------------------------------------------------------- property
_expr = st.deferred(
    lambda: st.one_of(
        st.integers(0, 3).map(lambda i: ("var", i)),
        st.tuples(st.just("not"), _expr),
        st.tuples(st.just("and"), _expr, _expr),
        st.tuples(st.just("or"), _expr, _expr),
        st.tuples(st.just("xor"), _expr, _expr),
    )
)


def _build(mgr: BDDManager, expr) -> int:
    if expr[0] == "var":
        return mgr.var(expr[1])
    if expr[0] == "not":
        return mgr.negate(_build(mgr, expr[1]))
    left = _build(mgr, expr[1])
    right = _build(mgr, expr[2])
    if expr[0] == "and":
        return mgr.conj(left, right)
    if expr[0] == "or":
        return mgr.disj(left, right)
    return mgr.xor(left, right)


def _eval(expr, env) -> bool:
    if expr[0] == "var":
        return env[expr[1]]
    if expr[0] == "not":
        return not _eval(expr[1], env)
    left = _eval(expr[1], env)
    right = _eval(expr[2], env)
    if expr[0] == "and":
        return left and right
    if expr[0] == "or":
        return left or right
    return left != right


@settings(max_examples=120, deadline=None)
@given(_expr)
def test_bdd_matches_truth_table(expr):
    mgr = BDDManager()
    for level in range(4):
        mgr.declare(str(level))
    node = _build(mgr, expr)
    count = 0
    for bits in itertools.product((False, True), repeat=4):
        env = dict(enumerate(bits))
        want = _eval(expr, env)
        assert mgr.evaluate(node, env) == want
        count += want
    assert mgr.count_models(node, 4) == count


class TestQuantification:
    def test_exists_basic(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.disj(mgr.conj(a, b), mgr.conj(mgr.negate(a), c))
        assert mgr.exists([0], f) == mgr.disj(b, c)
        assert mgr.forall([0], f) == mgr.conj(b, c)

    def test_exists_no_levels_identity(self, mgr):
        a = mgr.var("a")
        assert mgr.exists([], a) == a
        assert mgr.forall([], mgr.ONE) == mgr.ONE

    def test_exists_all_support_gives_constant(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.conj(a, mgr.negate(b))
        assert mgr.exists([0, 1], f) == mgr.ONE
        assert mgr.forall([0, 1], f) == mgr.ZERO

    def test_exists_matches_truth_table(self, mgr):
        import itertools

        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.xor(mgr.conj(a, b), c)
        q = mgr.exists([1], f)
        for va, vc in itertools.product((False, True), repeat=2):
            want = any(
                mgr.evaluate(f, {0: va, 1: vb, 2: vc})
                for vb in (False, True)
            )
            assert mgr.evaluate(q, {0: va, 2: vc}) == want

    def test_compose_substitution(self, mgr):
        import itertools

        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.xor(a, b)
        g = mgr.conj(b, c)
        h = mgr.compose(f, 0, g)  # a := b & c
        for vb, vc in itertools.product((False, True), repeat=2):
            want = (vb and vc) != vb
            assert mgr.evaluate(h, {1: vb, 2: vc}) == want

    def test_compose_untouched_variable(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.conj(a, b)
        # substituting a variable absent from f is the identity
        c = mgr.var("c")
        assert mgr.compose(f, 2, mgr.negate(a)) == f

    def test_image_computation(self, mgr):
        """exists() computes the image of a function vector — the BDD
        analogue of the care networks in repro.core.instance_models."""
        x = mgr.var("x")
        # outputs: s = x OR NOT x (constant 1), d = x
        v_s, v_d = mgr.var("v_s"), mgr.var("v_d")
        s_fn = mgr.ONE
        d_fn = x
        relation = mgr.conj(
            mgr.negate(mgr.xor(v_s, s_fn)),
            mgr.negate(mgr.xor(v_d, d_fn)),
        )
        image = mgr.exists([0], relation)  # quantify the input x
        # image: v_s must be 1, v_d free
        assert image == v_s
