"""Tests for conditional (per-vector exact) hierarchical analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import cascade_adder
from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.conditional import ConditionalAnalyzer
from repro.core.demand import flat_functional_delay
from repro.errors import AnalysisError
from repro.sim.timed import stable_times
from repro.sim.vectors import all_vectors, random_vectors


class TestPerVectorExactness:
    def test_matches_flat_per_vector_oracle_on_cascade(self):
        design = cascade_adder(4, 2)
        flat = design.flatten()
        analyzer = ConditionalAnalyzer(design)
        for vec in random_vectors(design.inputs, 24, seed=21):
            got = analyzer.analyze(vec)
            oracle = stable_times(flat, vec)
            for out in design.outputs:
                assert got.output_times[out] == pytest.approx(oracle[out]), (
                    vec,
                    out,
                )
            # functional values agree too
            flat_values = flat.output_values(vec)
            for out in design.outputs:
                assert got.net_values[out] == flat_values[out]

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_oracle_on_random_bipartitions(self, seed):
        net = random_network(5, 16, seed=seed, num_outputs=2)
        try:
            design = cascade_bipartition(net)
        except Exception:
            return
        flat = design.flatten()
        analyzer = ConditionalAnalyzer(design)
        for vec in random_vectors(design.inputs, 6, seed=seed):
            got = analyzer.analyze(vec)
            oracle = stable_times(flat, vec)
            for out in design.outputs:
                assert got.output_times[out] == pytest.approx(oracle[out])

    def test_arrival_times_respected(self):
        design = cascade_adder(4, 2)
        flat = design.flatten()
        analyzer = ConditionalAnalyzer(design)
        vec = {x: (i % 3 == 0) for i, x in enumerate(design.inputs)}
        arrival = {"c_in": 4.0, "a0": 2.0}
        got = analyzer.analyze(vec, arrival)
        oracle = stable_times(flat, vec, arrival)
        for out in design.outputs:
            assert got.output_times[out] == pytest.approx(oracle[out])


class TestWorstCase:
    def test_enumeration_equals_flat_xbd0(self):
        design = cascade_adder(4, 2)  # 9 inputs -> 512 vectors
        analyzer = ConditionalAnalyzer(design)
        worst, witness = analyzer.worst_case_by_enumeration()
        flat_delay, _, _ = flat_functional_delay(design)
        assert worst == flat_delay
        # the witness actually achieves the bound
        assert analyzer.analyze(witness).delay == worst

    def test_conditional_beats_conservative_for_easy_modes(self):
        """With a0=b0=0 the carry chain is dead: per-vector is faster than
        the vector-independent hierarchical estimate for the carry."""
        design = cascade_adder(4, 2)
        analyzer = ConditionalAnalyzer(design)
        easy = {x: False for x in design.inputs}
        got = analyzer.analyze(easy)
        # all-zero operands: c4 settles as soon as g/p logic does
        assert got.output_times["c4"] < 10.0

    def test_enumeration_cap(self):
        design = cascade_adder(8, 2)  # 17 inputs
        analyzer = ConditionalAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.worst_case_by_enumeration(max_inputs=10)


class TestCaching:
    def test_cache_shared_across_instances(self):
        design = cascade_adder(8, 2)
        analyzer = ConditionalAnalyzer(design)
        vec = {x: False for x in design.inputs}
        analyzer.analyze(vec)
        # 4 instances but one module: conditional tuples cached per
        # (module, output, local values); all-zero operands give at most
        # a couple of distinct local vectors per output
        outputs_per_module = len(design.modules["csa_block2"].outputs)
        assert len(analyzer._cache) <= 3 * outputs_per_module

    def test_missing_vector_entry_rejected(self):
        design = cascade_adder(4, 2)
        analyzer = ConditionalAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.analyze({"c_in": True})


class TestConditionalTuples:
    def test_paper_and_example_through_api(self):
        from repro.netlist.hierarchy import HierDesign, Module
        from repro.netlist.network import Network

        net = Network("andm")
        net.add_inputs(["x1", "x2"])
        net.add_gate("z", "AND", ["x1", "x2"], 1.0)
        net.set_outputs(["z"])
        design = HierDesign("d")
        design.add_module(Module("andm", net))
        design.add_input("x1")
        design.add_input("x2")
        design.add_instance(
            "u", "andm", {"x1": "x1", "x2": "x2", "z": "z"}
        )
        design.set_outputs(["z"])
        analyzer = ConditionalAnalyzer(design)
        inputs, tuples = analyzer.conditional_tuples(
            "andm", "z", {"x1": False, "x2": False}
        )
        # either input alone controls: {(1,-inf), (-inf,1)} in delay form
        assert set(tuples) == {
            (1.0, float("-inf")),
            (float("-inf"), 1.0),
        }
        inputs, tuples = analyzer.conditional_tuples(
            "andm", "z", {"x1": True, "x2": True}
        )
        assert tuples == ((1.0, 1.0),)
