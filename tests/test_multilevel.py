"""Tests for multi-level hierarchy via timing-model composition."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.hier import HierarchicalAnalyzer
from repro.core.multilevel import (
    compose_design_models,
    design_as_module,
    evaluate_composed,
)
from repro.core.timing_model import NEG_INF
from repro.netlist.hierarchy import HierDesign
from repro.sim.vectors import random_vectors


class TestComposition:
    def test_composed_model_matches_propagation(self):
        """Evaluating the composed model == running step-2 propagation."""
        design = cascade_adder(8, 2)
        models = compose_design_models(design)
        analyzer = HierarchicalAnalyzer(design)
        for seed in range(5):
            arrival = {
                x: float((hash((seed, x)) % 7)) for x in design.inputs
            }
            direct = analyzer.analyze(arrival)
            composed = evaluate_composed(models, arrival)
            for out in design.outputs:
                assert composed[out] == pytest.approx(
                    direct.output_times[out]
                ), (seed, out)

    def test_composed_cascade_carry_model(self):
        """The composed c8 model of csa8.2 exposes the skip chain: the
        effective c_in delay is 2 per block = 8."""
        design = cascade_adder(8, 2)
        models = compose_design_models(design)
        assert models["c8"].delay_from("c_in") == 8.0
        # a0 rides one full block (8) plus three skips (6): 14
        assert models["c8"].delay_from("a0") == 14.0

    def test_unused_inputs_marked_unconstrained(self):
        design = cascade_adder(4, 2)
        models = compose_design_models(design)
        # s0 depends only on c_in, a0, b0
        s0 = models["s0"]
        for x, d in zip(s0.inputs, s0.tuples[0]):
            if x in ("c_in", "a0", "b0"):
                assert d != NEG_INF
            else:
                assert d == NEG_INF


class TestMultiLevel:
    def build_two_level(self, half_bits: int = 4):
        """A 2*half_bits adder whose leaves are themselves cascades."""
        inner = cascade_adder(half_bits, 2)
        module, models = design_as_module(inner, name="half")
        top = HierDesign("two_level")
        top.add_module(module)
        top.add_input("c_in")
        total = 2 * half_bits
        for i in range(total):
            top.add_input(f"a{i}")
            top.add_input(f"b{i}")
        carry = "c_in"
        outputs = []
        for blk in range(2):
            conns = {"c_in": carry}
            for i in range(half_bits):
                bit = blk * half_bits + i
                conns[f"a{i}"] = f"a{bit}"
                conns[f"b{i}"] = f"b{bit}"
                conns[f"s{i}"] = f"s{bit}"
                outputs.append(f"s{bit}")
            carry_net = f"cc{blk}"
            conns[f"c{half_bits}"] = carry_net
            top.add_instance(f"h{blk}", "half", conns)
            carry = carry_net
        outputs.append(carry)
        top.set_outputs(outputs)
        return top, module, models

    def test_two_level_matches_flat_single_level(self):
        top, module, models = self.build_two_level(4)
        analyzer = HierarchicalAnalyzer(top)
        analyzer.preload_models("half", models)
        two_level = analyzer.analyze()
        # reference: the same 8-bit adder as a single-level cascade
        reference = HierarchicalAnalyzer(cascade_adder(8, 2)).analyze()
        assert two_level.delay == reference.delay
        assert two_level.output_times[top.outputs[-1]] == pytest.approx(
            reference.output_times["c8"]
        )

    def test_two_level_under_arrivals(self):
        top, module, models = self.build_two_level(4)
        analyzer = HierarchicalAnalyzer(top)
        analyzer.preload_models("half", models)
        reference = HierarchicalAnalyzer(cascade_adder(8, 2))
        for seed in range(3):
            arrival = {
                x: float(v)
                for x, v in zip(
                    top.inputs,
                    [hash((seed, x)) % 5 for x in top.inputs],
                )
            }
            # rename reference arrivals to the flat cascade's input names
            got = analyzer.analyze(arrival).delay
            want = reference.analyze(arrival).delay
            assert got == pytest.approx(want)


class TestCaps:
    def test_max_tuples_keeps_conservative(self):
        design = cascade_adder(8, 2)
        full = compose_design_models(design, max_tuples=8)
        capped = compose_design_models(design, max_tuples=1)
        for seed in range(3):
            arrival = {
                x: float(hash((seed, x)) % 6) for x in design.inputs
            }
            for out in design.outputs:
                a = full[out].stable_time(arrival)
                b = capped[out].stable_time(arrival)
                assert b >= a - 1e-9  # capping never goes optimistic
