"""Unit and property tests for the CNF container and CDCL solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.sat.dimacs import dumps_dimacs, loads_dimacs
from repro.sat.solver import Solver, SolveResult, luby, solve_cnf


class TestCNF:
    def test_new_vars(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_unallocated_literal_rejected(self):
        cnf = CNF(2)
        with pytest.raises(SolverError):
            cnf.add_clause((3,))

    def test_zero_literal_rejected(self):
        cnf = CNF(1)
        with pytest.raises(SolverError):
            cnf.add_clause((0,))

    def test_evaluate(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        cnf.add_clause((-1,))
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})

    def test_copy_independent(self):
        cnf = CNF(1)
        cnf.add_clause((1,))
        cp = cnf.copy()
        cp.add_clause((-1,))
        assert len(cnf) == 1
        assert len(cp) == 2


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF(3)
        cnf.add_clause((1, -2))
        cnf.add_clause((2, 3))
        again = loads_dimacs(dumps_dimacs(cnf))
        assert again.num_vars == 3
        assert list(again) == list(cnf)

    def test_comments_ignored(self):
        cnf = loads_dimacs("c hi\np cnf 2 1\n1 -2 0\n")
        assert cnf.clauses == [(1, -2)]

    def test_clause_before_header_rejected(self):
        with pytest.raises(Exception):
            loads_dimacs("1 0\np cnf 1 1\n")

    def test_multiline_clause(self):
        cnf = loads_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [(1, 2, 3)]


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
        ]

    def test_invalid(self):
        with pytest.raises(SolverError):
            luby(0)


class TestSolverBasics:
    def test_empty_formula_sat(self):
        assert Solver(CNF()).solve() is SolveResult.SAT

    def test_unit_clauses(self):
        cnf = CNF(2)
        cnf.add_clause((1,))
        cnf.add_clause((-2,))
        result, model = solve_cnf(cnf)
        assert result is SolveResult.SAT
        assert model[1] is True and model[2] is False

    def test_trivial_unsat(self):
        cnf = CNF(1)
        cnf.add_clause((1,))
        cnf.add_clause((-1,))
        assert Solver(cnf).solve() is SolveResult.UNSAT

    def test_tautological_clause_dropped(self):
        cnf = CNF(1)
        solver = Solver(cnf)
        solver.add_clause((1, -1))
        assert solver.solve() is SolveResult.SAT

    def test_propagation_chain(self):
        # implications 1 -> 2 -> 3 -> -1 force 1 false
        cnf = CNF(3)
        cnf.add_clause((-1, 2))
        cnf.add_clause((-2, 3))
        cnf.add_clause((-3, -1))
        cnf.add_clause((1, 2))
        result, model = solve_cnf(cnf)
        assert result is SolveResult.SAT
        assert cnf.evaluate(model)

    def test_model_satisfies_formula(self):
        cnf = CNF(4)
        cnf.add_clause((1, 2))
        cnf.add_clause((-1, 3))
        cnf.add_clause((-3, -2, 4))
        cnf.add_clause((-4, 1))
        result, model = solve_cnf(cnf)
        assert result is SolveResult.SAT
        assert cnf.evaluate(model)

    def test_pigeonhole_3_into_2_unsat(self):
        # var p{i}{j}: pigeon i in hole j (i in 0..2, j in 0..1)
        cnf = CNF(6)

        def var(i, j):
            return 1 + i * 2 + j

        for i in range(3):
            cnf.add_clause((var(i, 0), var(i, 1)))
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    cnf.add_clause((-var(i1, j), -var(i2, j)))
        assert Solver(cnf).solve() is SolveResult.UNSAT

    def test_pigeonhole_4_into_3_unsat(self):
        cnf = CNF(12)

        def var(i, j):
            return 1 + i * 3 + j

        for i in range(4):
            cnf.add_clause(tuple(var(i, j) for j in range(3)))
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    cnf.add_clause((-var(i1, j), -var(i2, j)))
        assert Solver(cnf).solve() is SolveResult.UNSAT

    def test_add_clause_mid_search_rejected(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        solver = Solver(cnf)
        solver.solve()
        # after solve, decision levels may remain; adding must fail then
        if solver._trail_lim:
            with pytest.raises(SolverError):
                solver.add_clause((1,))

    def test_conflict_limit(self):
        cnf = CNF(12)

        def var(i, j):
            return 1 + i * 3 + j

        for i in range(4):
            cnf.add_clause(tuple(var(i, j) for j in range(3)))
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    cnf.add_clause((-var(i1, j), -var(i2, j)))
        with pytest.raises(SolverError):
            Solver(cnf).solve(conflict_limit=1)


class TestAssumptions:
    def test_assumption_forces_value(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        solver = Solver(cnf)
        assert solver.solve(assumptions=[-1]) is SolveResult.SAT
        assert solver.model()[2] is True

    def test_conflicting_assumptions_unsat(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        solver = Solver(cnf)
        assert solver.solve(assumptions=[-1, -2]) is SolveResult.UNSAT

    def test_assumption_vs_implication_unsat(self):
        cnf = CNF(2)
        cnf.add_clause((-1, 2))
        solver = Solver(cnf)
        assert solver.solve(assumptions=[1, -2]) is SolveResult.UNSAT

    def test_reusable_across_assumption_sets(self):
        cnf = CNF(3)
        cnf.add_clause((1, 2, 3))
        solver = Solver(cnf)
        assert solver.solve(assumptions=[-1, -2]) is SolveResult.SAT
        assert solver.model()[3] is True
        assert solver.solve(assumptions=[-1, -3]) is SolveResult.SAT
        assert solver.model()[2] is True
        assert solver.solve(assumptions=[-1, -2, -3]) is SolveResult.UNSAT
        assert solver.solve(assumptions=[]) is SolveResult.SAT


def _brute_force_sat(num_vars: int, clauses: list[tuple[int, ...]]) -> bool:
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_solver_agrees_with_brute_force(data):
    num_vars = data.draw(st.integers(1, 8))
    num_clauses = data.draw(st.integers(1, 24))
    literal = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = [
        tuple(data.draw(st.lists(literal, min_size=1, max_size=4)))
        for _ in range(num_clauses)
    ]
    cnf = CNF(num_vars)
    for c in clauses:
        cnf.add_clause(c)
    result, model = solve_cnf(cnf)
    expected = _brute_force_sat(num_vars, clauses)
    assert (result is SolveResult.SAT) == expected
    if model is not None:
        assert cnf.evaluate(model)
