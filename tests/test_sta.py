"""Tests for topological STA and path-length machinery."""

import pytest

from repro.circuits.adders import carry_skip_block
from repro.errors import AnalysisError
from repro.netlist.network import Network
from repro.sta.delays import (
    PAPER_EXAMPLE_DELAYS,
    mapped_delays,
    paper_example_delays,
    unit_delays,
)
from repro.sta.paths import (
    all_pin_path_lengths,
    distinct_path_lengths,
    event_time_candidates,
)
from repro.sta.topological import (
    NEG_INF,
    POS_INF,
    arrival_times,
    critical_path,
    pin_to_pin_delay,
    required_times,
    slacks,
    topological_delay,
)


def chain(delays) -> Network:
    net = Network("chain")
    net.add_input("x")
    prev = "x"
    for i, d in enumerate(delays):
        prev = net.add_gate(f"g{i}", "BUF", [prev], d)
    net.set_outputs([prev])
    return net


class TestArrival:
    def test_chain_sum(self):
        net = chain([1.0, 2.0, 3.0])
        assert topological_delay(net) == 6.0

    def test_custom_arrivals(self):
        net = chain([1.0])
        assert topological_delay(net, arrival={"x": 4.0}) == 5.0

    def test_neg_inf_input_never_constrains(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        assert topological_delay(net, arrival={"a": NEG_INF}) == 1.0

    def test_constant_gate_arrives_at_neg_inf(self):
        net = Network()
        net.add_input("a")
        net.add_gate("k", "CONST0", [])
        net.add_gate("z", "OR", ["a", "k"], 1.0)
        net.set_outputs(["z"])
        at = arrival_times(net)
        assert at["k"] == NEG_INF
        assert at["z"] == 1.0

    def test_carry_skip_arrivals(self, csa_block2):
        at = arrival_times(csa_block2)
        assert at["s0"] == 4.0 and at["s1"] == 6.0 and at["c_out"] == 8.0

    def test_no_outputs_raises(self):
        with pytest.raises(AnalysisError):
            topological_delay(Network())


class TestRequiredAndSlack:
    def test_required_backward(self):
        net = chain([1.0, 2.0])
        rt = required_times(net, {"g1": 10.0})
        assert rt["g1"] == 10.0
        assert rt["g0"] == 8.0
        assert rt["x"] == 7.0

    def test_unconstrained_signal_inf(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "NOT", ["a"], 1.0)
        net.set_outputs(["z"])
        rt = required_times(net, {"z": 0.0})
        assert rt["b"] == POS_INF

    def test_default_slacks_zero_on_critical_path(self, csa_block2):
        sl = slacks(csa_block2)
        assert sl["c_out"] == 0.0
        assert sl["a0"] == 0.0  # on the longest path
        assert sl["c_in"] == 2.0  # longest path from c_in is 6, deadline 8

    def test_unknown_required_signal_raises(self):
        net = chain([1.0])
        with pytest.raises(AnalysisError):
            required_times(net, {"nope": 0.0})


class TestCriticalPath:
    def test_chain_path(self):
        net = chain([1.0, 2.0])
        cp = critical_path(net)
        assert cp.signals == ("x", "g0", "g1")
        assert cp.delay == 3.0

    def test_carry_skip_critical_ends_at_cout(self, csa_block2):
        cp = critical_path(csa_block2)
        assert cp.delay == 8.0
        assert cp.signals[-1] == "c_out"
        assert cp.signals[0] in ("a0", "b0")


class TestPinToPin:
    def test_carry_skip_pairs(self, csa_block2):
        assert pin_to_pin_delay(csa_block2, "c_in", "c_out") == 6.0
        assert pin_to_pin_delay(csa_block2, "a0", "c_out") == 8.0
        assert pin_to_pin_delay(csa_block2, "a1", "c_out") == 6.0
        assert pin_to_pin_delay(csa_block2, "a1", "s0") == NEG_INF

    def test_unknown_signal_raises(self, csa_block2):
        with pytest.raises(AnalysisError):
            pin_to_pin_delay(csa_block2, "ghost", "c_out")


class TestDistinctPathLengths:
    def test_carry_skip_cin_to_cout(self, csa_block2):
        # ripple path (6) and the skip path through the MUX (2)
        assert distinct_path_lengths(csa_block2, "c_in", "c_out") == (6.0, 2.0)

    def test_a0_to_cout(self, csa_block2):
        # via p0/ripple: 8; via g0/ripple: 6; via p0/skip-select: 5;
        # via g0 at second stage... enumerate: expect descending distinct
        lengths = distinct_path_lengths(csa_block2, "a0", "c_out")
        assert lengths[0] == 8.0
        assert lengths == tuple(sorted(lengths, reverse=True))
        assert 5.0 in lengths

    def test_no_path_empty(self, csa_block2):
        assert distinct_path_lengths(csa_block2, "a1", "s0") == ()

    def test_cap_keeps_largest(self):
        # parallel chains of distinct lengths 1..6
        net = Network()
        net.add_input("x")
        ends = []
        for length in range(1, 7):
            prev = "x"
            for i in range(length):
                prev = net.add_gate(f"c{length}_{i}", "BUF", [prev], 1.0)
            ends.append(prev)
        net.add_gate("z", "OR", ends, 0.0)
        net.set_outputs(["z"])
        lengths = distinct_path_lengths(net, "x", "z", cap=3)
        assert lengths == (6.0, 5.0, 4.0)

    def test_all_pin_path_lengths_consistent(self, csa_block2):
        table = all_pin_path_lengths(csa_block2)
        for (x, o), lengths in table.items():
            assert lengths[0] == pin_to_pin_delay(csa_block2, x, o)


class TestEventCandidates:
    def test_candidates_contain_stable_time(self, csa_block2):
        cands = event_time_candidates(csa_block2)
        assert 8.0 in cands["c_out"]
        assert 2.0 in cands["c_out"]  # the skip path event
        assert cands["c_out"][0] == 8.0  # descending, topological first

    def test_arrival_offsets_propagate(self):
        net = chain([1.0, 1.0])
        cands = event_time_candidates(net, {"x": 3.0})
        assert cands["g1"] == (5.0,)


class TestDelayPolicies:
    def test_unit_delays(self, csa_block2):
        unit = unit_delays(csa_block2)
        assert unit.gate("p0").delay == 1.0
        assert unit.gate("c_out").delay == 1.0

    def test_mapped_delays_with_default(self, csa_block2):
        doubled = mapped_delays(csa_block2, {}, default=3.0)
        assert doubled.gate("skip").delay == 3.0

    def test_paper_example_delays_roundtrip(self, csa_block2):
        again = paper_example_delays(unit_delays(csa_block2))
        assert again.gate("p0").delay == PAPER_EXAMPLE_DELAYS[
            again.gate("p0").gtype
        ]
        assert arrival_times(again)["c_out"] == 8.0
