"""Tests for the event-driven waveform simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block
from repro.circuits.random_logic import random_network
from repro.core.xbd0 import StabilityAnalyzer
from repro.errors import AnalysisError
from repro.netlist.network import Network
from repro.sim.waveform import (
    Waveform,
    last_output_event,
    last_transition_bound,
    simulate_transition,
    transition_pairs,
)


def inverter_chain(n: int) -> Network:
    net = Network("chain")
    net.add_input("a")
    prev = "a"
    for i in range(n):
        prev = net.add_gate(f"n{i}", "NOT", [prev], 1.0)
    net.set_outputs([prev])
    return net


class TestWaveform:
    def test_value_at(self):
        wf = Waveform(initial=False, events=[(1.0, True), (3.0, False)])
        assert wf.value_at(0.5) is False
        assert wf.value_at(1.0) is True
        assert wf.value_at(2.9) is True
        assert wf.value_at(3.0) is False
        assert wf.final is False
        assert wf.last_event_time == 3.0

    def test_quiet_signal(self):
        wf = Waveform(initial=True)
        assert wf.final is True
        assert wf.last_event_time == float("-inf")


class TestSimulateTransition:
    def test_chain_propagation(self):
        net = inverter_chain(3)
        waveforms = simulate_transition(net, {"a": False}, {"a": True})
        assert waveforms["a"].events == [(0.0, True)]
        assert waveforms["n0"].events == [(1.0, False)]
        assert waveforms["n2"].events == [(3.0, False)]

    def test_no_change_no_events(self):
        net = inverter_chain(2)
        waveforms = simulate_transition(net, {"a": True}, {"a": True})
        assert all(not wf.events for wf in waveforms.values())

    def test_final_values_match_static_evaluation(self):
        net = carry_skip_block(2)
        src = {x: False for x in net.inputs}
        dst = {x: True for x in net.inputs}
        waveforms = simulate_transition(net, src, dst)
        expected = net.evaluate(dst)
        for sig, wf in waveforms.items():
            assert wf.final == expected[sig], sig

    def test_glitch_captured(self):
        # z = AND(a, NOT a): static 0 -> 0 but a 0->1 step glitches z high
        net = Network("glitch")
        net.add_input("a")
        net.add_gate("na", "NOT", ["a"], 1.0)
        net.add_gate("z", "AND", ["a", "na"], 1.0)
        net.set_outputs(["z"])
        waveforms = simulate_transition(net, {"a": False}, {"a": True})
        events = waveforms["z"].events
        assert events == [(1.0, True), (2.0, False)]

    def test_arrival_offsets(self):
        net = Network("or2")
        net.add_inputs(["a", "b"])
        net.add_gate("z", "OR", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        waveforms = simulate_transition(
            net, {"a": False, "b": False}, {"a": True, "b": True},
            arrival={"a": 0.0, "b": 5.0},
        )
        # z rises from a's edge; b's later rise changes nothing
        assert waveforms["z"].events == [(1.0, True)]

    def test_missing_target_value_raises(self):
        net = inverter_chain(1)
        with pytest.raises(AnalysisError):
            simulate_transition(net, {"a": False}, {})


class TestTransitionPairs:
    def test_counts(self):
        pairs = list(transition_pairs(("a", "b")))
        assert len(pairs) == 12  # 4 * 3

    def test_cap(self):
        pairs = list(transition_pairs(("a", "b"), cap=5))
        assert len(pairs) == 5


class TestDynamicVsAnalytic:
    def test_carry_skip_dynamic_bound(self):
        """No stimulus moves c_out after the XBD0 stable time (8.0)."""
        net = carry_skip_block(2)
        dynamic = last_transition_bound(net, "c_out")
        analytic = StabilityAnalyzer(net).functional_delay("c_out")
        assert dynamic <= analytic
        # the ripple path is real under simultaneous switching:
        assert dynamic == analytic == 8.0

    def test_fig5_dynamic_witness(self):
        """With c_in arriving at 6, events at c_out still stop by 8."""
        net = carry_skip_block(2)
        arrival = {"c_in": 6.0}
        dynamic = last_transition_bound(net, "c_out", arrival)
        assert dynamic <= 8.0

    def test_support_cap(self):
        net = random_network(10, 20, seed=5, num_outputs=1)
        if len(net.support(net.outputs[0])) > 4:
            with pytest.raises(AnalysisError):
                last_transition_bound(net, net.outputs[0], max_inputs=4)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dynamic_never_exceeds_functional(self, seed):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        out = net.outputs[0]
        dynamic = last_transition_bound(net, out)
        analytic = StabilityAnalyzer(net).functional_delay(out)
        assert dynamic <= analytic + 1e-9

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.data())
    def test_single_stimulus_never_exceeds_functional(self, seed, data):
        net = random_network(5, 12, seed=seed, num_outputs=2)
        src = {x: data.draw(st.booleans()) for x in net.inputs}
        dst = {x: data.draw(st.booleans()) for x in net.inputs}
        last = last_output_event(net, src, dst)
        analyzer = StabilityAnalyzer(net)
        worst = max(
            analyzer.functional_delay(o) for o in net.outputs
        )
        assert last <= worst + 1e-9
