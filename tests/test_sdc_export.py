"""Tests for SDC exception export."""

import io

from repro.circuits.adders import cascade_adder
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.sdc_export import (
    collect_exceptions,
    dumps_sdc,
    export_design_sdc,
)
from repro.sta.known_false import KnownFalseAnalyzer


class TestCollect:
    def test_one_exception_per_instance(self):
        design = cascade_adder(8, 2)
        result = DemandDrivenAnalyzer(design).analyze()
        rows = collect_exceptions(design, result)
        # c_in->c_out refined once at module level -> 4 instance rows
        assert len(rows) == 4
        for inst, inp, out, topo, weight in rows:
            assert (inp, out) == ("c_in", "c_out")
            assert topo == 6.0
            assert weight == 2.0

    def test_no_refinements_no_rows(self):
        from repro.circuits.trees import parity_tree
        from repro.circuits.partition import cascade_bipartition

        design = cascade_bipartition(parity_tree(8))
        result = DemandDrivenAnalyzer(design).analyze()
        assert collect_exceptions(design, result) == []


class TestWrite:
    def test_sdc_text(self):
        design = cascade_adder(4, 2)
        result = DemandDrivenAnalyzer(design).analyze()
        text = dumps_sdc(design, result)
        assert "set_max_delay 2 -from [get_pins u0/c_in]" in text
        assert "-to [get_pins u0/c_out]" in text
        assert ";# topological 6" in text

    def test_separator(self):
        design = cascade_adder(4, 2)
        result = DemandDrivenAnalyzer(design).analyze()
        from repro.core.sdc_export import write_sdc

        buf = io.StringIO()
        write_sdc(design, result, buf, separator=".")
        assert "u0.c_in" in buf.getvalue()

    def test_one_step_export(self):
        design = cascade_adder(8, 2)
        buf = io.StringIO()
        count = export_design_sdc(design, buf)
        assert count == 4
        assert buf.getvalue().count("set_max_delay") == 4


class TestRoundTrip:
    def test_constraints_reproduce_functional_answer(self):
        """A topological tool consuming the exported exceptions must land
        on the demand-driven delay — closing the [1] loop."""
        design = cascade_adder(16, 2)
        result = DemandDrivenAnalyzer(design).analyze()
        annotations = {}
        for inst, inp, out, _topo, weight in collect_exceptions(
            design, result
        ):
            module_name = design.instances[inst].module_name
            annotations[(module_name, inp, out)] = weight
        annotated = KnownFalseAnalyzer(design).analyze(annotations)
        assert annotated.delay == result.delay


class TestCLI:
    def test_sdc_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.parsers.verilog import dumps_verilog

        design = cascade_adder(8, 2)
        design.name = "csa8_2"
        f = tmp_path / "csa8_2.v"
        f.write_text(dumps_verilog(design))
        assert main(["sdc", str(f)]) == 0
        out = capsys.readouterr().out
        assert "set_max_delay" in out

    def test_sdc_to_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.parsers.verilog import dumps_verilog

        design = cascade_adder(8, 2)
        design.name = "csa8_2"
        f = tmp_path / "csa8_2.v"
        f.write_text(dumps_verilog(design))
        target = tmp_path / "out.sdc"
        assert main(["sdc", str(f), "-o", str(target)]) == 0
        assert "set_max_delay" in target.read_text()

    def test_sdc_rejects_flat(self, tmp_path, capsys):
        from repro.cli import main
        from repro.circuits.adders import carry_skip_block
        from repro.parsers.verilog import dumps_verilog

        f = tmp_path / "flat.v"
        f.write_text(dumps_verilog(carry_skip_block(2)))
        assert main(["sdc", str(f)]) == 2
