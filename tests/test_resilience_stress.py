"""Stress drills for the fail-safe engine.

Two attack surfaces that unit tests cannot cover:

* many *processes* hammering one on-disk model library — the fsync'd
  atomic writes and ``fcntl`` locking must keep every entry readable;
* randomized fault injection over randomized circuits — under any
  mix of refinement/characterization faults the degraded arrival times
  must bound the fault-free exact ones from above (Theorem 1).
"""

from __future__ import annotations

import json
import multiprocessing
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnalysisOptions
from repro.circuits.adders import cascade_adder
from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.library.store import ModelLibrary
from repro.resilience import FaultPlan


def _hammer(cache_dir: str, bits: int) -> None:
    """One contender: analyze a design through the shared cache dir."""
    from repro.core.hier import HierarchicalAnalyzer
    from repro.library.store import ModelLibrary

    design = cascade_adder(bits, 2)
    library = ModelLibrary(cache_dir)
    result = HierarchicalAnalyzer(design, library=library).analyze()
    if not result.output_times:
        sys.exit(3)


@pytest.mark.slow
def test_multiprocess_cache_hammer(tmp_path):
    """Concurrent writers/readers never corrupt or lose cache entries."""
    cache = tmp_path / "cache"
    ctx = multiprocessing.get_context("fork")
    # Mixed workloads: same signatures collide on the same entry files,
    # different bit widths add writer/writer and writer/reader overlap.
    workers = [
        ctx.Process(target=_hammer, args=(str(cache), bits))
        for bits in (4, 4, 6, 6, 4)
    ]
    for p in workers:
        p.start()
    for p in workers:
        p.join(timeout=120)
    assert all(p.exitcode == 0 for p in workers)

    entries = list(cache.glob("*.json"))
    assert entries  # something was persisted
    for entry in entries:  # and every survivor decodes
        json.loads(entry.read_text())
    assert not (cache / "quarantine").exists()

    # A cold library sees only clean entries: hits, no re-characterization.
    library = ModelLibrary(cache)
    HierarchicalAnalyzer(cascade_adder(4, 2), library=library).analyze()
    assert library.stats.disk_hits >= 1
    assert library.stats.corrupt_entries == 0
    assert library.stats.quarantined == 0
    assert library.stats.characterizations == 0


def _bipartition(seed: int, num_gates: int):
    net = random_network(4, num_gates, seed=seed, name=f"rnd{seed}")
    return cascade_bipartition(net, name=f"rnd{seed}.hier")


@pytest.mark.faulty
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_gates=st.integers(8, 24),
    faults=st.integers(1, 6),
)
def test_demand_faults_stay_conservative(seed, num_gates, faults):
    """Injected refinement faults never make an arrival time optimistic."""
    exact = DemandDrivenAnalyzer(_bipartition(seed, num_gates)).analyze()
    plan = FaultPlan().add("demand.refine", "exception", times=faults)
    degraded = DemandDrivenAnalyzer(
        _bipartition(seed, num_gates),
        options=AnalysisOptions(fault_plan=plan),
    ).analyze()
    assert degraded.delay <= degraded.topological_delay
    for out, t in exact.arrival_times.items():
        assert degraded.arrival_times[out] >= t


@pytest.mark.faulty
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), num_gates=st.integers(8, 20))
def test_characterization_faults_stay_conservative(seed, num_gates):
    """Poisoned characterization degrades to topological, never below."""
    exact = HierarchicalAnalyzer(_bipartition(seed, num_gates)).analyze()
    plan = FaultPlan().add("hier.characterize", "exception", times=-1)
    degraded = HierarchicalAnalyzer(
        _bipartition(seed, num_gates),
        options=AnalysisOptions(fault_plan=plan),
    ).analyze()
    assert degraded.degradations
    for out, t in exact.arrival_times.items():
        assert degraded.arrival_times[out] >= t
