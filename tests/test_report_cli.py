"""Tests for k-worst-paths, timing reports, and the CLI."""

import pytest

from repro.circuits.adders import carry_skip_block
from repro.circuits.iscaslike import c17
from repro.cli import load_circuit, main, parse_arrivals
from repro.errors import AnalysisError, ReproError
from repro.netlist.network import Network
from repro.parsers.bench import dumps_bench
from repro.parsers.blif import dumps_blif
from repro.sta.paths import k_worst_paths
from repro.sta.report import functional_timing_report, timing_report
from repro.sta.topological import arrival_times, pin_to_pin_delay


class TestKWorstPaths:
    def test_ordering_and_count(self, csa_block2):
        paths = k_worst_paths(csa_block2, "c_out", 6)
        delays = [d for _, d in paths]
        assert delays == sorted(delays, reverse=True)
        assert delays[0] == 8.0
        assert len(paths) == 6

    def test_first_path_matches_arrival(self, csa_block2):
        at = arrival_times(csa_block2)
        for out in csa_block2.outputs:
            paths = k_worst_paths(csa_block2, out, 1)
            assert paths[0][1] == at[out]

    def test_paths_are_real(self, csa_block2):
        for path, delay in k_worst_paths(csa_block2, "c_out", 10):
            assert csa_block2.is_input(path[0])
            assert path[-1] == "c_out"
            # recompute the delay along the path
            total = 0.0
            for sig in path[1:]:
                total += csa_block2.gate(sig).delay
            assert total == delay
            # consecutive signals really are connected
            for a, b in zip(path, path[1:]):
                assert a in csa_block2.gate(b).fanins

    def test_respects_arrival_times(self, csa_block2):
        paths = k_worst_paths(csa_block2, "c_out", 1, {"c_in": 10.0})
        path, delay = paths[0]
        assert path[0] == "c_in"
        assert delay == 16.0  # 10 + longest c_in path (6)

    def test_k_zero(self, csa_block2):
        assert k_worst_paths(csa_block2, "c_out", 0) == []

    def test_unknown_sink(self, csa_block2):
        with pytest.raises(AnalysisError):
            k_worst_paths(csa_block2, "ghost")

    def test_exhausts_small_cone(self):
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        assert len(k_worst_paths(net, "z", 10)) == 2


class TestReports:
    def test_timing_report_contents(self, csa_block2):
        text = timing_report(csa_block2)
        assert "Timing report for csa_block2" in text
        assert "c_out" in text and "slack" in text
        assert "worst paths to c_out" in text
        assert "VIOLATED" not in text  # default deadline = worst arrival

    def test_violated_marker(self, csa_block2):
        text = timing_report(csa_block2, required={"c_out": 5.0})
        assert "VIOLATED" in text

    def test_functional_report_flags_false_paths(self, csa_block2):
        text = functional_timing_report(csa_block2, {"c_in": 6.0})
        assert "pessimism" in text
        assert "false-path slack" in text
        # with c_in late, the ripple chain exceeds the stable time
        assert "c_in ->" in text

    def test_functional_report_quiet_when_no_falsity(self, and2):
        text = functional_timing_report(and2)
        assert "false-path slack" not in text


class TestCLI:
    @pytest.fixture()
    def bench_file(self, tmp_path):
        f = tmp_path / "c17.bench"
        f.write_text(dumps_bench(c17()))
        return str(f)

    @pytest.fixture()
    def blif_file(self, tmp_path):
        f = tmp_path / "csa.blif"
        f.write_text(dumps_blif(carry_skip_block(2)))
        return str(f)

    def test_load_by_extension(self, bench_file, blif_file):
        assert load_circuit(bench_file).outputs == ("G22", "G23")
        assert len(load_circuit(blif_file).outputs) == 3

    def test_load_unknown_extension(self, tmp_path):
        f = tmp_path / "x.v"
        f.write_text("")
        with pytest.raises(ReproError):
            load_circuit(str(f))

    def test_parse_arrivals(self):
        assert parse_arrivals(["a=1", "b=2.5"]) == {"a": 1.0, "b": 2.5}
        with pytest.raises(ReproError):
            parse_arrivals(["oops"])
        with pytest.raises(ReproError):
            parse_arrivals(["a=zebra"])

    def test_report_command(self, bench_file, capsys):
        assert main(["report", bench_file]) == 0
        out = capsys.readouterr().out
        assert "Timing report" in out
        assert "Functional (XBD0) timing report" in out

    def test_report_topological_only(self, bench_file, capsys):
        assert main(["report", bench_file, "--topological-only"]) == 0
        out = capsys.readouterr().out
        assert "Functional" not in out

    def test_delay_command_with_arrival(self, bench_file, capsys):
        assert main(["delay", bench_file, "--arrival", "G1=3"]) == 0
        out = capsys.readouterr().out
        assert "G22" in out and "G23" in out

    def test_characterize_to_file(self, blif_file, tmp_path, capsys):
        target = tmp_path / "lib.json"
        assert main(["characterize", blif_file, "-o", str(target)]) == 0
        assert target.exists()
        import json

        doc = json.loads(target.read_text())
        assert doc["format"] == "repro-timing-library"
        assert "c_out" in doc["models"]

    def test_error_exit_code(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.bench")
        assert main(["delay", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 5" in out

    def test_version_flag(self, capsys):
        from repro.cli import package_version

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == f"repro-sta {package_version()}"
        # and the reported version is a real dotted version string
        assert package_version()[0].isdigit()

    def test_unknown_subcommand_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        # one-line contract: error: <message>, no usage dump
        lines = [line for line in err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error: unknown command 'frobnicate'")
        assert "--help" in lines[0]

    def test_bad_flag_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["report", "--no-such-flag"])
        assert exc.value.code == 2
        assert "error:" in capsys.readouterr().err
