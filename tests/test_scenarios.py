"""Scenario specs and families: parsing, lowering, engine, surfaces.

The redesigned scenario API of ``repro.scenarios``: first-class
:class:`ScenarioSpec` objects, the three generated families
(:class:`CornerSweep` / :class:`ParametricSweep` / :class:`MonteCarlo`),
and the ``analyze_family`` engine that lowers them onto the kernel's
delay-override hooks.  The load-bearing guarantees are exactness
guarantees: a unit-scale corner, a parametric sweep at ``x = 0``, and a
zero-variance Monte-Carlo sample perform the same float64 arithmetic as
a plain single-scenario analysis, so the tests demand bit identity, not
tolerances.
"""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnalysisSession, coerce_scenarios
from repro.circuits.adders import cascade_adder
from repro.cli import load_scenarios, main
from repro.errors import AnalysisError, ReproError
from repro.kernel import HAVE_NUMPY
from repro.parsers.verilog import dumps_verilog
from repro.scenarios import (
    Corner,
    CornerSweep,
    FamilyResult,
    MonteCarlo,
    ParametricSweep,
    Scenario,
    ScenarioFamily,
    ScenarioSet,
    ScenarioSpec,
    analyze_family,
    family_from_json,
    spec_from_json,
)
from repro.scenarios.families import child_seed
from repro.scenarios.result import DETAIL_LIMIT
from repro.server import TimingServerApp

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

BACKENDS = ["python", pytest.param("numpy", marks=needs_numpy)]


@pytest.fixture(scope="module")
def design():
    return cascade_adder(8, 2)


@pytest.fixture(scope="module")
def handle(design):
    return AnalysisSession(design).compile()


def arrivals_of(result):
    """Per-member output-arrival dicts (only retained on small families)."""
    return [dict(m.arrivals) for m in result.members]


# ----------------------------------------------------------------- spec shapes
class TestScenarioSpec:
    def test_scenario_expand_and_count(self):
        s = Scenario({"a": 1.5}, name="late-a")
        assert s.count() == 1
        assert s.expand() == [{"a": 1.5}]
        assert s.kind == "scenario"

    def test_scenario_none_arrival_is_empty(self):
        assert Scenario().expand() == [{}]

    def test_scenario_rejects_non_numbers(self):
        with pytest.raises(ReproError, match="not a number"):
            Scenario({"a": "zebra"})
        with pytest.raises(ReproError, match="must be finite"):
            Scenario({"a": float("inf")})

    def test_set_from_arrival_mappings(self):
        spec = ScenarioSet([{"a": 1.0}, {"b": 2.0}])
        assert spec.count() == 2
        assert spec.expand() == [{"a": 1.0}, {"b": 2.0}]

    def test_set_from_scenario_objects_and_docs(self):
        spec = ScenarioSet(
            [Scenario({"a": 1.0}), {"arrival": {"b": 2.0}, "name": "x"}]
        )
        assert spec.expand() == [{"a": 1.0}, {"b": 2.0}]
        assert spec.scenarios[1].name == "x"

    def test_set_of_variadic(self):
        spec = ScenarioSet.of({"a": 1.0}, {"b": 2.0}, name="pair")
        assert spec.expand() == [{"a": 1.0}, {"b": 2.0}]
        assert spec.name == "pair"
        with pytest.raises(ReproError, match="empty"):
            ScenarioSet.of()

    def test_set_rejects_empty(self):
        with pytest.raises(ReproError, match="empty"):
            ScenarioSet([])

    def test_set_rejects_non_mapping_item(self):
        with pytest.raises(ReproError, match="item 1"):
            ScenarioSet([{"a": 1.0}, 7])

    def test_equality_by_serialized_form(self):
        assert Scenario({"a": 1.0}) == Scenario({"a": 1.0})
        assert Scenario({"a": 1.0}) != Scenario({"a": 2.0})
        assert Scenario({"a": 1.0}) != ScenarioSet([{"a": 1.0}])
        assert hash(Scenario({"a": 1.0})) == hash(Scenario({"a": 1.0}))

    def test_dumps_is_json(self):
        doc = json.loads(ScenarioSet([{"a": 1.0}], name="n").dumps())
        assert doc == {"scenarios": [{"a": 1.0}], "name": "n"}


class TestSpecFromJson:
    def test_bare_list_is_a_set(self):
        spec = spec_from_json([{"a": 1.0}, {}])
        assert isinstance(spec, ScenarioSet)
        assert spec.count() == 2

    def test_arrival_key_is_a_scenario(self):
        spec = spec_from_json({"arrival": {"a": 3.0}, "name": "s"})
        assert isinstance(spec, Scenario)
        assert spec.name == "s"

    def test_scenarios_key_is_a_set(self):
        spec = spec_from_json({"scenarios": [{"a": 1.0}]})
        assert isinstance(spec, ScenarioSet)

    def test_family_key_dispatches_to_families(self):
        spec = spec_from_json(
            {"family": "corner", "corners": [{"name": "typ"}]}
        )
        assert isinstance(spec, CornerSweep)

    def test_existing_spec_passes_through(self):
        s = Scenario({"a": 1.0})
        assert spec_from_json(s) is s

    def test_object_without_spec_keys_errors(self):
        with pytest.raises(ReproError, match="'family', 'arrival', or"):
            spec_from_json({"a0": 1.0})

    def test_non_list_non_object_errors(self):
        with pytest.raises(ReproError, match="expected a JSON list"):
            spec_from_json(42, source="f.json")

    def test_round_trip_every_shape(self):
        specs = [
            Scenario({"a": 1.0}, name="one"),
            ScenarioSet([{"a": 1.0}, {"b": 2.0}]),
            CornerSweep([Corner("slow", 1.2)], arrival={"a": 1.0}),
            ParametricSweep("vdd", [0.0, 0.5], slope=0.25),
            MonteCarlo(4, seed=9, sigma=0.1),
        ]
        for spec in specs:
            again = spec_from_json(json.loads(json.dumps(spec.to_json())))
            assert again == spec


# -------------------------------------------------------------------- families
class TestCorner:
    def test_validation(self):
        with pytest.raises(ReproError, match="non-empty"):
            Corner(name="")
        with pytest.raises(ReproError, match="finite positive"):
            Corner(name="bad", scale=0.0)
        with pytest.raises(ReproError, match="finite positive"):
            Corner(name="bad", scale=float("nan"))
        with pytest.raises(ReproError, match="'m1'"):
            Corner(name="bad", modules=(("m1", -1.0),))

    def test_json_round_trip(self):
        c = Corner("slow", 1.2, modules=(("csa_block2", 1.5),))
        assert Corner.from_json(c.to_json(), "t") == c
        assert c.by_module == {"csa_block2": 1.5}

    def test_duplicate_corner_names_rejected(self):
        with pytest.raises(ReproError, match="duplicate corner"):
            CornerSweep([{"name": "typ"}, {"name": "typ"}])


class TestFamilySpecs:
    def test_corner_sweep_members(self):
        fam = CornerSweep([Corner("fast", 0.9), Corner("slow", 1.1)])
        assert fam.count() == 2
        labels = [m.label for m in fam.expand()]
        assert labels == ["fast", "slow"]
        assert fam.expand()[1].params == (("scale", 1.1),)

    def test_parametric_members_and_validation(self):
        fam = ParametricSweep("vdd", [0.0, 0.25, 0.5])
        assert fam.count() == 3
        assert [m.label for m in fam.expand()] == [
            "vdd=0", "vdd=0.25", "vdd=0.5",
        ]
        with pytest.raises(ReproError, match="non-empty"):
            ParametricSweep("", [0.0])
        with pytest.raises(ReproError, match="empty"):
            ParametricSweep("x", [])

    def test_monte_carlo_corner_major_expansion(self):
        fam = MonteCarlo(
            3, corners=[{"name": "fast", "scale": 0.9}, {"name": "slow"}]
        )
        assert fam.count() == 6
        members = fam.expand()
        assert [m.label for m in members[:4]] == [
            "fast#0", "fast#1", "fast#2", "slow#0",
        ]
        assert members[3].index == 3

    def test_monte_carlo_validation(self):
        with pytest.raises(ReproError, match="samples must be >= 1"):
            MonteCarlo(0)
        with pytest.raises(ReproError, match=">= 0"):
            MonteCarlo(2, sigma=-0.5)
        assert MonteCarlo(2).corners[0].name == "typ"

    def test_family_from_json_errors(self):
        with pytest.raises(ReproError, match="unknown family"):
            family_from_json({"family": "volcano"})
        with pytest.raises(ReproError, match="needs 'corners'"):
            family_from_json({"family": "corner"})
        with pytest.raises(ReproError, match="needs 'samples'"):
            family_from_json({"family": "mc"})
        with pytest.raises(ReproError, match="needs 'values'"):
            family_from_json({"family": "parametric", "parameter": "x"})
        with pytest.raises(ReproError, match="must be a JSON object"):
            family_from_json([1, 2])

    def test_parametric_sweep_shorthand(self):
        fam = family_from_json(
            {
                "family": "parametric",
                "parameter": "x",
                "sweep": {"start": 0.0, "stop": 1.0, "count": 5},
            }
        )
        assert fam.values == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_mc_alias(self):
        fam = family_from_json({"family": "mc", "samples": 2})
        assert isinstance(fam, MonteCarlo)

    def test_with_arrival_family_wins(self):
        fam = CornerSweep([Corner("typ")], arrival={"a": 5.0})
        merged = fam.with_arrival({"a": 1.0, "b": 2.0})
        assert merged.arrival == {"a": 5.0, "b": 2.0}
        # the original is untouched
        assert fam.arrival == {"a": 5.0}

    def test_child_seed_deterministic_and_distinct(self):
        seeds = [child_seed(7, i) for i in range(100)]
        assert seeds == [child_seed(7, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert child_seed(7, 0) != child_seed(8, 0)


# ------------------------------------------------------------ group_factors
class TestGroupFactors:
    def test_unknown_group_is_a_typo_error(self, handle):
        fam = CornerSweep(
            [Corner("slow", modules=(("no_such_module", 1.5),))]
        )
        with pytest.raises(AnalysisError, match="unknown delay group"):
            analyze_family(handle, fam)

    def test_per_module_scaling_scales_everything_here(self, handle):
        # every entry of a csa design belongs to the one leaf module,
        # so a per-module factor must equal a global one
        name = handle.plan.groups[0]
        per_module = analyze_family(
            handle,
            CornerSweep([Corner("s", modules=((name, 1.25),))]),
        )
        global_scale = analyze_family(
            handle, CornerSweep([Corner("s", scale=1.25)])
        )
        assert arrivals_of(per_module) == arrivals_of(global_scale)


# ------------------------------------------------------------------ the engine
class TestEngine:
    def test_needs_a_family(self, handle):
        with pytest.raises(AnalysisError, match="needs a ScenarioFamily"):
            analyze_family(handle, ScenarioSet([{"a0": 1.0}]))

    def test_batch_size_validated(self, handle):
        fam = CornerSweep([Corner("typ")])
        with pytest.raises(AnalysisError, match="batch_size"):
            analyze_family(handle, fam, batch_size=0)

    def test_unknown_arrival_input(self, handle):
        fam = CornerSweep([Corner("typ")], arrival={"zz_top": 1.0})
        with pytest.raises(AnalysisError, match="unknown input 'zz_top'"):
            analyze_family(handle, fam)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unit_corner_bit_identical_to_baseline(self, handle, backend):
        arrival = {"a0": 1.0, "b3": 2.5}
        fam = CornerSweep([Corner("typ", 1.0)], arrival=arrival)
        result = analyze_family(handle, fam, backend=backend)
        base = handle.propagate([arrival], nets=handle.outputs)[0]
        assert arrivals_of(result) == [base]
        assert result.delay == max(base.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parametric_x0_bit_identical(self, handle, backend):
        fam = ParametricSweep(
            "x", [0.0, 1.0], slope=0.5, sensitivity=0.1
        )
        result = analyze_family(handle, fam, backend=backend)
        base = handle.propagate([{}], nets=handle.outputs)[0]
        assert dict(result.members[0].arrivals) == base
        # a positive slope strictly slows a non-trivial design
        assert result.members[1].delay > result.members[0].delay

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mc_zero_variance_bit_identical(self, handle, backend):
        fam = MonteCarlo(3, seed=11, sigma=0.0, sigma_rel=0.0)
        result = analyze_family(handle, fam, backend=backend)
        base = handle.propagate([{}], nets=handle.outputs)[0]
        assert arrivals_of(result) == [base] * 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mc_fixed_seed_deterministic(self, handle, backend):
        fam = MonteCarlo(8, seed=42, sigma=0.2)
        a = analyze_family(handle, fam, backend=backend)
        b = analyze_family(handle, fam, backend=backend)
        assert a.delays() == b.delays()
        other = analyze_family(
            handle, MonteCarlo(8, seed=43, sigma=0.2), backend=backend
        )
        assert a.delays() != other.delays()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mc_chunking_does_not_change_samples(self, handle, backend):
        # per-member child seeds: chunk boundaries must be invisible
        # (the backend is pinned — numpy and python draw from
        # different generators by design)
        fam = MonteCarlo(10, seed=5, sigma=0.15)
        big = analyze_family(handle, fam, backend=backend, batch_size=64)
        small = analyze_family(handle, fam, backend=backend, batch_size=3)
        assert big.delays() == small.delays()

    def test_corner_sweep_matches_naive_loop(self, handle):
        # engine result == propagating each corner's scaled delays
        # one at a time through the raw delays= hook
        corners = [Corner("fast", 0.9), Corner("typ"), Corner("slow", 1.3)]
        result = analyze_family(handle, CornerSweep(corners))
        for member, corner in zip(result.members, corners):
            scaled = [
                d * f
                for d, f in zip(
                    handle.plan.ent_delay, corner.factors(handle.plan)
                )
            ]
            lone = handle.propagate(
                [{}], nets=handle.outputs, delays=scaled
            )[0]
            assert dict(member.arrivals) == lone

    def test_aggregates(self, handle):
        result = analyze_family(
            handle,
            CornerSweep([Corner("fast", 0.9), Corner("slow", 1.1)]),
        )
        assert isinstance(result, FamilyResult)
        assert result.count == 2
        assert result.member("slow").delay == result.delay
        assert sum(f for _, f in result.criticality) == pytest.approx(1.0)
        worst = dict(result.worst)
        for out in handle.outputs:
            assert worst[out] == max(
                dict(m.arrivals)[out] for m in result.members
            )
        stats = {s.name: s for s in result.corner_stats()}
        assert stats["slow"].count == 1
        assert stats["slow"].mean == result.member("slow").delay

    def test_detail_limit_drops_arrivals(self, handle):
        big = MonteCarlo(DETAIL_LIMIT + 1, seed=1)
        result = analyze_family(handle, big)
        assert result.count == DETAIL_LIMIT + 1
        assert all(m.arrivals == () for m in result.members)
        # the O(members) summary survives
        assert all(m.delay > 0.0 for m in result.members)

    def test_to_dict_is_json_ready(self, handle):
        result = analyze_family(
            handle, MonteCarlo(4, seed=2, sigma=0.1)
        )
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["count"] == 4
        assert doc["family"] == "monte-carlo"
        assert set(doc["histogram"]) >= {"edges", "counts", "mean"}
        assert len(doc["members"]) == 4

    def test_render_mentions_corners_and_histogram(self, handle):
        text = analyze_family(
            handle,
            MonteCarlo(3, seed=3, sigma=0.1, corners=[{"name": "slow"}]),
        ).render()
        assert "Scenario family 'monte-carlo'" in text
        assert "corner slow" in text
        assert "histogram:" in text


# ----------------------------------------------------- hypothesis properties
class TestExactnessProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(0.0, 8.0, allow_nan=False),
        st.floats(0.0, 8.0, allow_nan=False),
    )
    def test_unit_scale_corner_equals_analyze(self, a, b):
        design = cascade_adder(4, 2)
        session = AnalysisSession(design)
        arrival = {"a0": a, "b1": b}
        fam = CornerSweep([Corner("typ", 1.0)], arrival=arrival)
        family = session.analyze_family(fam)
        single = session.hierarchical(arrival)
        assert dict(family.members[0].arrivals) == single.output_times
        assert family.delay == single.delay

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32))
    def test_zero_variance_mc_equals_analyze(self, seed):
        design = cascade_adder(4, 2)
        session = AnalysisSession(design)
        fam = MonteCarlo(2, seed=seed, sigma=0.0, sigma_rel=0.0)
        family = session.analyze_family(fam)
        single = session.hierarchical({})
        for member in family.members:
            assert dict(member.arrivals) == single.output_times

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32))
    def test_fixed_seed_mc_is_reproducible(self, seed):
        handle = AnalysisSession(cascade_adder(4, 2)).compile()
        fam = MonteCarlo(4, seed=seed, sigma=0.3)
        assert (
            analyze_family(handle, fam).delays()
            == analyze_family(handle, fam).delays()
        )


# ------------------------------------------------------------ session surface
class TestSessionSurface:
    def test_analyze_family_accepts_spec_dict(self, design):
        result = AnalysisSession(design).analyze_family(
            {"family": "corner", "corners": [{"name": "typ"}]}
        )
        assert isinstance(result, FamilyResult)
        assert result.count == 1

    def test_analyze_batch_routes_families(self, design):
        result = AnalysisSession(design).analyze_batch(
            MonteCarlo(3, seed=1)
        )
        assert isinstance(result, FamilyResult)
        assert result.count == 3

    def test_analyze_batch_accepts_specs_without_warning(self, design):
        session = AnalysisSession(design)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            batch = session.analyze_batch(
                ScenarioSet([{"a0": 1.0}, {"b0": 2.0}])
            )
        assert len(batch.scenarios) == 2

    def test_bare_list_rejected(self, design):
        session = AnalysisSession(design)
        with pytest.raises(ReproError, match="ScenarioSet"):
            session.analyze_batch([{"a0": 1.0}])

    def test_coerce_scenarios_expands_specs(self, design):
        out = coerce_scenarios(
            ScenarioSet([{"a0": 1.0}]), list(design.inputs), source="t"
        )
        assert out == [{"a0": 1.0}]
        # expanded scenarios still hit the unknown-input check
        with pytest.raises(ReproError, match="unknown input"):
            coerce_scenarios(
                ScenarioSet([{"zz": 1.0}]), list(design.inputs), source="t"
            )

    def test_coerce_scenarios_rejects_families(self, design):
        with pytest.raises(ReproError, match="analyze_family"):
            coerce_scenarios(
                MonteCarlo(2), list(design.inputs), source="t"
            )


# ------------------------------------------------------------------ the server
@pytest.fixture(scope="module")
def app():
    app = TimingServerApp(max_scenarios=50)
    app.registry.register_design(cascade_adder(4, 2))
    yield app
    app.close()


def call(app, path, payload):
    status, ctype, body = app.handle(
        "POST", path, json.dumps(payload).encode()
    )
    return status, json.loads(body)


class TestServerFamilies:
    def test_family_request(self, app):
        status, doc = call(
            app,
            "/batch",
            {
                "design": "csa4_2",
                "family": {
                    "family": "monte-carlo",
                    "samples": 5,
                    "seed": 7,
                    "sigma": 0.1,
                    "corners": [{"name": "fast", "scale": 0.9},
                                {"name": "slow", "scale": 1.1}],
                },
            },
        )
        assert status == 200
        assert doc["count"] == 10
        assert doc["family"] == "monte-carlo"
        assert {c["name"] for c in doc["corners"]} == {"fast", "slow"}
        assert doc["name"] == "csa4_2"

    def test_family_spec_under_scenarios_key(self, app):
        status, doc = call(
            app,
            "/batch",
            {
                "design": "csa4_2",
                "scenarios": {
                    "family": "corner",
                    "corners": [{"name": "typ"}],
                },
            },
        )
        assert status == 200
        assert doc["family"] == "corner"

    def test_oversized_family_is_413(self, app):
        status, doc = call(
            app,
            "/batch",
            {
                "design": "csa4_2",
                "family": {"family": "mc", "samples": 51},
            },
        )
        assert status == 413
        assert doc["error"]["code"] == "too-many-scenarios"
        assert "max_scenarios limit of 50" in doc["error"]["message"]

    def test_oversized_list_is_413(self, app):
        status, doc = call(
            app,
            "/batch",
            {"design": "csa4_2", "scenarios": [{}] * 51},
        )
        assert status == 413
        assert doc["error"]["code"] == "too-many-scenarios"

    def test_family_and_scenarios_together_is_400(self, app):
        status, doc = call(
            app,
            "/batch",
            {
                "design": "csa4_2",
                "scenarios": [{}],
                "family": {"family": "mc", "samples": 1},
            },
        )
        assert status == 400

    def test_max_scenarios_validated(self):
        with pytest.raises(ValueError, match="max_scenarios"):
            TimingServerApp(max_scenarios=0)


# --------------------------------------------------------------------- the CLI
class TestFamilyCLI:
    @pytest.fixture()
    def verilog_file(self, tmp_path):
        f = tmp_path / "csa8_2.v"
        f.write_text(dumps_verilog(cascade_adder(8, 2, name="csa8_2")))
        return str(f)

    @pytest.fixture()
    def family_file(self, tmp_path):
        f = tmp_path / "fam.json"
        f.write_text(json.dumps(
            {"family": "mc", "samples": 4, "seed": 1, "sigma": 0.05}
        ))
        return str(f)

    def test_demand_family_flag(self, verilog_file, family_file, capsys):
        assert main(["demand", verilog_file, "--family", family_file]) == 0
        out = capsys.readouterr().out
        assert "Scenario family 'monte-carlo'" in out
        assert "4 members" in out

    def test_hier_report_family_flag(
        self, verilog_file, family_file, capsys
    ):
        assert (
            main(["hier-report", verilog_file, "--family", family_file])
            == 0
        )
        assert "Scenario family" in capsys.readouterr().out

    def test_scenarios_file_may_hold_a_family(
        self, verilog_file, family_file, capsys
    ):
        assert (
            main(["demand", verilog_file, "--scenarios", family_file]) == 0
        )
        assert "Scenario family" in capsys.readouterr().out

    def test_both_flags_exit_2(
        self, verilog_file, family_file, tmp_path, capsys
    ):
        scn = tmp_path / "s.json"
        scn.write_text("[{}]")
        code = main([
            "demand", verilog_file,
            "--scenarios", str(scn), "--family", family_file,
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_family_arrival_flag_merges(
        self, verilog_file, tmp_path, capsys
    ):
        f = tmp_path / "corner.json"
        f.write_text(json.dumps(
            {"family": "corner", "corners": [{"name": "typ"}]}
        ))
        assert main([
            "demand", verilog_file, "--family", str(f),
            "--arrival", "a0=50",
        ]) == 0
        plain = main(["demand", verilog_file, "--family", str(f)])
        assert plain == 0
        late, base = capsys.readouterr().out.split("Scenario family")[1:]
        assert late != base

    def test_dict_scenarios_file_still_one_line_error(
        self, verilog_file, tmp_path, capsys
    ):
        # regression: a valid-JSON object that is not a spec must stay
        # a clean one-liner + exit 2, not a traceback
        scn = tmp_path / "bad.json"
        scn.write_text('{"a0": 1.0}')
        code = main(["demand", verilog_file, "--scenarios", str(scn)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "expected a JSON list" in err
        assert err.count("\n") == 1

    def test_legacy_list_does_not_warn(self, verilog_file, tmp_path):
        scn = tmp_path / "list.json"
        scn.write_text('[{"a0": 1.0}, {"b0": 2.0}]')
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert (
                main(["demand", verilog_file, "--scenarios", str(scn)])
                == 0
            )


class TestLoadScenarios:
    def test_spec_object_with_scenarios_key(self, tmp_path):
        f = tmp_path / "spec.json"
        f.write_text(json.dumps({"scenarios": [{"a": 1.0}]}))
        assert load_scenarios(str(f), ["a", "b"]) == [{"a": 1.0}]

    def test_family_spec_returned_as_family(self, tmp_path):
        f = tmp_path / "fam.json"
        f.write_text(json.dumps({"family": "mc", "samples": 2}))
        loaded = load_scenarios(str(f), ["a"])
        assert isinstance(loaded, ScenarioFamily)

    def test_arrival_spec_expands(self, tmp_path):
        f = tmp_path / "one.json"
        f.write_text(json.dumps({"arrival": {"a": 2.0}}))
        assert load_scenarios(str(f), ["a"]) == [{"a": 2.0}]
