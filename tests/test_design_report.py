"""Tests for hierarchical design reports and the hier-report CLI command."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.cli import main
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.design_report import (
    design_timing_report,
    render_design_report,
)
from repro.parsers.verilog import dumps_verilog


@pytest.fixture(scope="module")
def design():
    d = cascade_adder(8, 2)
    d.name = "csa8_2"
    return d


class TestRender:
    def test_report_contents(self, design):
        text = design_timing_report(design)
        assert "Hierarchical timing report for csa8_2" in text
        assert "estimated delay      : 16" in text
        assert "topological estimate : 26" in text
        assert "pessimism removed    : 10" in text
        assert "false-path facts established" in text
        assert "c_in -> c_out  effective delay 2" in text

    def test_outputs_sorted_by_arrival(self, design):
        text = design_timing_report(design)
        lines = [l for l in text.splitlines() if l.strip().startswith("s")]
        # s7 (worst) listed before s0 (best)
        assert lines[0].split()[0] == "s7"
        assert lines[-1].split()[0] == "s0"

    def test_net_table_optional(self, design):
        without = design_timing_report(design)
        with_nets = design_timing_report(design, show_nets=True)
        assert "net" not in without.split("output")[1][:50]
        assert len(with_nets) > len(without)
        assert "c2 " in with_nets or "c2" in with_nets

    def test_render_with_precomputed_result(self, design):
        result = DemandDrivenAnalyzer(design).analyze({"c_in": 3.0})
        text = render_design_report(design, result)
        assert "estimated delay" in text


class TestCLI:
    @pytest.fixture()
    def verilog_file(self, tmp_path, design):
        f = tmp_path / "csa8_2.v"
        f.write_text(dumps_verilog(design))
        return str(f)

    def test_hier_report(self, verilog_file, capsys):
        assert main(["hier-report", verilog_file]) == 0
        out = capsys.readouterr().out
        assert "Hierarchical timing report" in out
        assert "false-path facts" in out

    def test_hier_report_with_nets(self, verilog_file, capsys):
        assert main(["hier-report", verilog_file, "--nets"]) == 0
        assert "net" in capsys.readouterr().out

    def test_hier_report_rejects_flat_file(self, tmp_path, capsys):
        from repro.circuits.adders import carry_skip_block

        f = tmp_path / "flat.v"
        f.write_text(dumps_verilog(carry_skip_block(2)))
        assert main(["hier-report", str(f)]) == 2
        assert "flat module" in capsys.readouterr().err

    def test_hier_report_rejects_bench(self, tmp_path, capsys):
        f = tmp_path / "x.bench"
        f.write_text("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
        assert main(["hier-report", str(f)]) == 2

    def test_flat_commands_accept_verilog(self, verilog_file, capsys):
        assert main(["delay", verilog_file]) == 0
        out = capsys.readouterr().out
        assert "c8" in out
