"""Unit tests for gate primitives and their prime implicants."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.gates import (
    GateType,
    check_arity,
    evaluate,
    gate_primes,
    satisfied_primes,
)

_VARIADIC = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestEvaluate:
    @pytest.mark.parametrize(
        "gtype,values,expected",
        [
            (GateType.AND, (True, True), True),
            (GateType.AND, (True, False), False),
            (GateType.OR, (False, False), False),
            (GateType.OR, (False, True), True),
            (GateType.NAND, (True, True), False),
            (GateType.NOR, (False, False), True),
            (GateType.XOR, (True, False), True),
            (GateType.XOR, (True, True), False),
            (GateType.XNOR, (True, True), True),
            (GateType.NOT, (True,), False),
            (GateType.BUF, (True,), True),
            (GateType.CONST0, (), False),
            (GateType.CONST1, (), True),
        ],
    )
    def test_truth_table_points(self, gtype, values, expected):
        assert evaluate(gtype, values) is expected

    @pytest.mark.parametrize(
        "values,expected",
        [
            ((False, True, False), True),   # s=0 -> d0
            ((False, False, True), False),
            ((True, False, True), True),    # s=1 -> d1
            ((True, True, False), False),
        ],
    )
    def test_mux(self, values, expected):
        assert evaluate(GateType.MUX, values) is expected

    def test_xor_three_inputs_is_parity(self):
        for bits in itertools.product((False, True), repeat=3):
            assert evaluate(GateType.XOR, bits) == (sum(bits) % 2 == 1)


class TestArity:
    def test_not_requires_one(self):
        with pytest.raises(NetlistError):
            check_arity(GateType.NOT, 2)

    def test_mux_requires_three(self):
        with pytest.raises(NetlistError):
            check_arity(GateType.MUX, 2)

    def test_const_requires_zero(self):
        with pytest.raises(NetlistError):
            check_arity(GateType.CONST0, 1)

    def test_and_requires_at_least_one(self):
        with pytest.raises(NetlistError):
            check_arity(GateType.AND, 0)
        check_arity(GateType.AND, 1)
        check_arity(GateType.AND, 5)


def _assert_primes_sound_and_complete(gtype: GateType, n: int) -> None:
    """Every prime forces the claimed value; every minterm is covered."""
    on, off = gate_primes(gtype, n)
    for phase, primes in ((True, on), (False, off)):
        for prime in primes:
            fixed = dict(prime)
            free = [i for i in range(n) if i not in fixed]
            for bits in itertools.product((False, True), repeat=len(free)):
                vec = dict(fixed)
                vec.update(zip(free, bits))
                values = tuple(vec[i] for i in range(n))
                assert evaluate(gtype, values) is phase, (
                    f"{gtype} prime {prime} does not force {phase}"
                )
    for bits in itertools.product((False, True), repeat=n):
        value = evaluate(gtype, bits)
        primes = on if value else off
        assert any(
            all(bits[i] == v for i, v in prime) for prime in primes
        ), f"{gtype} minterm {bits} uncovered"


@pytest.mark.parametrize("gtype", _VARIADIC)
@pytest.mark.parametrize("n", [1, 2, 3])
def test_variadic_primes_sound_complete(gtype, n):
    _assert_primes_sound_and_complete(gtype, n)


@pytest.mark.parametrize(
    "gtype,n",
    [
        (GateType.NOT, 1),
        (GateType.BUF, 1),
        (GateType.MUX, 3),
        (GateType.CONST0, 0),
        (GateType.CONST1, 0),
    ],
)
def test_fixed_arity_primes_sound_complete(gtype, n):
    _assert_primes_sound_and_complete(gtype, n)


def test_mux_has_consensus_terms():
    on, off = gate_primes(GateType.MUX, 3)
    assert ((1, True), (2, True)) in on
    assert ((1, False), (2, False)) in off


class TestSatisfiedPrimes:
    def test_and_controlled(self):
        primes = satisfied_primes(GateType.AND, 2, (False, False))
        assert set(primes) == {((0, False),), ((1, False),)}

    def test_and_all_ones(self):
        primes = satisfied_primes(GateType.AND, 2, (True, True))
        assert primes == (((0, True), (1, True)),)

    def test_mux_agreeing_data(self):
        # s=0, d0=d1=1: both the select branch and the consensus fire.
        primes = satisfied_primes(GateType.MUX, 3, (False, True, True))
        assert ((0, False), (1, True)) in primes
        assert ((1, True), (2, True)) in primes

    @given(
        st.sampled_from(_VARIADIC + [GateType.MUX, GateType.NOT, GateType.BUF]),
        st.data(),
    )
    def test_satisfied_primes_match_value(self, gtype, data):
        n = 3 if gtype is GateType.MUX else (
            1 if gtype in (GateType.NOT, GateType.BUF) else
            data.draw(st.integers(1, 4))
        )
        values = tuple(data.draw(st.booleans()) for _ in range(n))
        primes = satisfied_primes(gtype, n, values)
        assert primes, "at least one prime of the output phase must fire"
        for prime in primes:
            assert all(values[i] == v for i, v in prime)
