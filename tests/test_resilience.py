"""Fail-safe analysis engine: deadlines, fault tolerance, degradation.

Exercises :mod:`repro.resilience` directly (deadlines, fault plans, the
resilient executor, cache quarantine/locking) and end-to-end through the
analyzers and the CLI: every injected crash, timeout, or corruption must
degrade to a conservative answer — never to a traceback, never to an
optimistic one (Theorem 1).
"""

from __future__ import annotations

import json

import pytest

from repro.api import AnalysisOptions, AnalysisSession
from repro.cli import main
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.errors import ReproError
from repro.library.scheduler import characterize_modules
from repro.library.store import ModelLibrary
from repro.resilience import (
    HAVE_FCNTL,
    Deadline,
    DeadlineExceeded,
    DegradationLog,
    FaultPlan,
    FileLock,
    InjectedFault,
    ResiliencePolicy,
    execute_directive,
    parse_fault_spec,
    run_resilient,
)

EXAMPLE = "examples/csa8_2.v"


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# --------------------------------------------------------------------- policy
class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None, clock=FakeClock())
        assert not d.limited
        assert d.remaining() is None
        assert not d.expired()
        d.check()  # no raise

    def test_expiry_and_check(self):
        clock = FakeClock()
        d = Deadline(5.0, clock=clock)
        assert d.limited and not d.expired()
        clock.now = 4.9
        assert d.remaining() == pytest.approx(0.1)
        clock.now = 5.0
        assert d.expired()
        with pytest.raises(DeadlineExceeded):
            d.check("step 1")

    def test_clamp_tightens_task_timeout(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert d.clamp(None) == pytest.approx(10.0)
        assert d.clamp(3.0) == pytest.approx(3.0)
        clock.now = 9.0
        assert d.clamp(3.0) == pytest.approx(1.0)
        clock.now = 20.0  # past the deadline: floored, still positive
        assert d.clamp(3.0) == pytest.approx(1e-3)

    def test_unlimited_clamp_passes_through(self):
        d = Deadline(None, clock=FakeClock())
        assert d.clamp(None) is None
        assert d.clamp(2.5) == 2.5


class TestResiliencePolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = ResiliencePolicy(
            backoff_base=0.5, backoff_cap=1.5, jitter=0.25, jitter_seed=7
        )
        first = policy.backoff_delays()
        second = policy.backoff_delays()
        seq1 = [next(first) for _ in range(5)]
        seq2 = [next(second) for _ in range(5)]
        assert seq1 == seq2  # same seed, same schedule
        assert all(d <= 1.5 for d in seq1)
        assert seq1[0] >= 0.5  # jitter only adds

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(module_timeout=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(refine_budget=-2)

    def test_options_build_policy(self):
        options = AnalysisOptions(
            deadline=30.0, module_timeout=5.0, retries=1, refine_budget=9
        )
        policy = options.resilience_policy()
        assert policy.deadline_seconds == 30.0
        assert policy.module_timeout == 5.0
        assert policy.max_retries == 1
        assert policy.refine_budget == 9

    def test_options_validate_resilience_fields(self):
        with pytest.raises(ValueError):
            AnalysisOptions(deadline=0.0)
        with pytest.raises(ValueError):
            AnalysisOptions(retries=-1)


# ----------------------------------------------------------------- fault plan
@pytest.mark.faulty
class TestFaultPlan:
    def test_budget_decrements(self):
        plan = FaultPlan().add("scheduler.task", "exception", times=2)
        assert plan.take("scheduler.task") is not None
        assert plan.take("scheduler.task") is not None
        assert plan.take("scheduler.task") is None
        assert len(plan.fired) == 2

    def test_poison_rule_fires_forever(self):
        plan = FaultPlan().add("scheduler.task", "crash", times=-1)
        for _ in range(10):
            assert plan.take("scheduler.task") is not None

    def test_context_match(self):
        plan = FaultPlan().add("scheduler.task", times=5, module="blk2")
        assert plan.take("scheduler.task", module="blk1") is None
        assert plan.take("scheduler.task", module="blk2") is not None

    def test_execute_exception_and_interrupt(self):
        with pytest.raises(InjectedFault):
            execute_directive(("exception", 0.0, "boom"))
        with pytest.raises(KeyboardInterrupt):
            execute_directive(("interrupt", 0.0, "ctrl-c"))
        execute_directive(None)  # no-op

    def test_crash_in_main_process_raises_not_exits(self):
        # A crash directive executed outside a worker must never take
        # down the interpreter — the serial fallback depends on it.
        with pytest.raises(InjectedFault):
            execute_directive(("crash", 0.0, "die"))

    def test_parse_fault_spec(self):
        rule = parse_fault_spec("scheduler.task:crash:-1:module=blk2")
        assert rule.point == "scheduler.task"
        assert rule.kind == "crash"
        assert rule.times == -1
        assert rule.match == {"module": "blk2"}
        assert parse_fault_spec("demand.refine:exception").times == 1

    def test_parse_rejects_bad_specs(self):
        for spec in ("nope", "p:", "p:badkind", "p:crash:x", "p:crash:1:kv"):
            with pytest.raises(ReproError):
                parse_fault_spec(spec)


# ------------------------------------------------------------------- executor
def _double(payload, directive=None, tracer=None):
    execute_directive(directive)
    return payload * 2


@pytest.mark.faulty
class TestRunResilient:
    def test_serial_success(self):
        outcomes = run_resilient(
            _double, [1, 2, 3], jobs=1, policy=ResiliencePolicy()
        )
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert all(o.ok for o in outcomes)

    def test_serial_injected_failure_degrades(self):
        plan = FaultPlan().add("scheduler.serial", "exception", times=1)
        dlog = DegradationLog()
        outcomes = run_resilient(
            _double,
            [1, 2],
            jobs=1,
            policy=ResiliencePolicy(fault_plan=plan),
            dlog=dlog,
        )
        assert [o.ok for o in outcomes] == [False, True]
        assert outcomes[0].failures == 1
        kinds = [d.kind for d in dlog]
        assert kinds == ["task-error"]

    def test_deadline_skips_remaining_serial_work(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now = 100.0  # already past the deadline
        dlog = DegradationLog()
        outcomes = run_resilient(
            _double, [1, 2], jobs=1, policy=ResiliencePolicy(),
            deadline=deadline, dlog=dlog,
        )
        assert all(not o.ok for o in outcomes)
        assert {d.kind for d in dlog} == {"deadline"}

    def test_interrupt_propagates(self):
        plan = FaultPlan().add("scheduler.serial", "interrupt", times=1)
        with pytest.raises(KeyboardInterrupt):
            run_resilient(
                _double, [1], jobs=1,
                policy=ResiliencePolicy(fault_plan=plan),
            )

    @pytest.mark.slow
    def test_worker_crash_recovers(self):
        # First two worker attempts die hard (BrokenProcessPool); the
        # run must still produce every result.
        plan = FaultPlan().add("scheduler.task", "crash", times=2)
        dlog = DegradationLog()
        outcomes = run_resilient(
            _double,
            [1, 2, 3],
            jobs=2,
            policy=ResiliencePolicy(
                fault_plan=plan, backoff_base=0.0, jitter=0.0
            ),
            dlog=dlog,
        )
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert any(d.kind == "worker-crash" for d in dlog)

    @pytest.mark.slow
    def test_poison_task_quarantined_then_serial(self):
        # One payload crashes every worker attempt; it must end up
        # quarantined and completed by the in-process fallback.
        plan = FaultPlan().add(
            "scheduler.task", "crash", times=-1, task="2"
        )
        dlog = DegradationLog()
        outcomes = run_resilient(
            _double,
            [1, 2, 3],
            jobs=2,
            policy=ResiliencePolicy(
                fault_plan=plan, max_retries=3, quarantine_after=2,
                backoff_base=0.0, jitter=0.0,
            ),
            dlog=dlog,
            subject_of=lambda p: {"task": str(p)},
        )
        assert [o.result for o in outcomes] == [2, 4, 6]
        poisoned = outcomes[1]
        assert poisoned.quarantined
        assert poisoned.failures >= 2
        assert any(d.kind == "quarantine" for d in dlog)

    @pytest.mark.slow
    def test_task_timeout_degrades(self):
        plan = FaultPlan().add(
            "scheduler.task", "timeout", times=-1, seconds=1.5
        )
        dlog = DegradationLog()
        outcomes = run_resilient(
            _double,
            [1, 2],
            jobs=2,
            policy=ResiliencePolicy(
                fault_plan=plan, module_timeout=0.2, max_retries=0,
                quarantine_after=1, backoff_base=0.0, jitter=0.0,
            ),
            dlog=dlog,
        )
        # The serial fallback runs the task without the worker directive,
        # so results still arrive — but the timeout was recorded.
        assert [o.result for o in outcomes] == [2, 4]
        assert any(d.kind == "task-timeout" for d in dlog)


# ------------------------------------------------------------------ scheduler
@pytest.mark.faulty
class TestSchedulerDegradation:
    def test_total_failure_falls_back_to_topological(self, csa4_design):
        # Every attempt (there is no parallel phase at jobs=1) fails:
        # the module must come back with its topological model.
        plan = FaultPlan().add("scheduler.serial", "exception", times=-1)
        dlog = DegradationLog()
        library = ModelLibrary()  # memory-only
        policy = ResiliencePolicy(fault_plan=plan)
        results = characterize_modules(
            csa4_design.modules, jobs=1, library=library,
            policy=policy, dlog=dlog,
        )
        assert set(results) == set(csa4_design.modules)
        assert any(d.kind == "characterization-error" for d in dlog)
        # Fallback models must never poison the persistent library.
        assert library.stats.stores == 0

    def test_fallback_is_conservative(self, csa4_design):
        plan = FaultPlan().add("scheduler.serial", "exception", times=-1)
        degraded = HierarchicalAnalyzer(
            csa4_design,
            library=ModelLibrary(),
            options=AnalysisOptions(fault_plan=plan),
        ).analyze()
        exact = HierarchicalAnalyzer(csa4_design).analyze()
        assert degraded.degradations
        assert degraded.degraded
        for out, t in exact.output_times.items():
            assert degraded.output_times[out] >= t


# ---------------------------------------------------------------------- store
class TestStoreHardening:
    def test_corrupt_entry_quarantined(self, tmp_path, csa4_design):
        cache = tmp_path / "cache"
        library = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=library).analyze()
        entries = list(cache.glob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{ not json")
        fresh = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=fresh).analyze()
        assert fresh.stats.corrupt_entries == len(entries)
        assert fresh.stats.quarantined == len(entries)
        quarantined = list((cache / "quarantine").glob("*.json"))
        assert len(quarantined) == len(entries)
        # The bad bytes are preserved for post-mortem inspection.
        assert quarantined[0].read_text() == "{ not json"

    def test_schema_mismatch_quarantined(self, tmp_path, csa4_design):
        cache = tmp_path / "cache"
        library = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=library).analyze()
        entry = next(cache.glob("*.json"))
        document = json.loads(entry.read_text())
        document["version"] = 999
        entry.write_text(json.dumps(document))
        fresh = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=fresh).analyze()
        assert fresh.stats.schema_mismatches == 1
        assert fresh.stats.quarantined == 1
        assert (cache / "quarantine" / entry.name).exists()

    @pytest.mark.faulty
    def test_injected_read_corruption(self, tmp_path, csa4_design):
        cache = tmp_path / "cache"
        warm = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=warm).analyze()
        plan = FaultPlan().add("store.read", "corrupt", times=1)
        library = ModelLibrary(cache, fault_plan=plan)
        result = HierarchicalAnalyzer(
            csa4_design, library=library
        ).analyze()
        # The poisoned read degrades to re-characterization, not failure.
        assert result.output_times
        assert library.stats.corrupt_entries == 1

    @pytest.mark.faulty
    def test_injected_store_corruption_heals(self, tmp_path, csa4_design):
        cache = tmp_path / "cache"
        plan = FaultPlan().add("store.corrupt", "corrupt", times=1)
        library = ModelLibrary(cache, fault_plan=plan)
        HierarchicalAnalyzer(csa4_design, library=library).analyze()
        # The store was garbled after the write; the next run must
        # quarantine it, re-characterize, and heal the cache.
        second = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=second).analyze()
        assert second.stats.quarantined == 1
        assert second.stats.characterizations == 1
        third = ModelLibrary(cache)
        HierarchicalAnalyzer(csa4_design, library=third).analyze()
        assert third.stats.disk_hits >= 1
        assert third.stats.characterizations == 0

    def test_durability_and_locking_flags(self, tmp_path, csa4_design):
        library = ModelLibrary(
            tmp_path / "cache", locking=False, durable=False
        )
        HierarchicalAnalyzer(csa4_design, library=library).analyze()
        assert library.stats.stores >= 1


@pytest.mark.skipif(not HAVE_FCNTL, reason="fcntl not available")
class TestFileLock:
    def test_exclusive_reentrant(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        assert not lock.held
        with lock.exclusive():
            assert lock.held
            with lock.shared():  # reentrant: depth counter, no deadlock
                assert lock.held
            assert lock.held
        assert not lock.held

    def test_disabled_lock_is_noop(self, tmp_path):
        lock = FileLock(tmp_path / ".lock", enabled=False)
        with lock.exclusive():
            assert not lock.held
        assert not (tmp_path / ".lock").exists()


# ------------------------------------------------------------------ analyzers
@pytest.mark.faulty
class TestAnalyzerDegradation:
    def test_hier_deadline_degrades_to_topological(self, csa4_design):
        exact = HierarchicalAnalyzer(csa4_design).analyze()
        degraded = HierarchicalAnalyzer(
            csa4_design, options=AnalysisOptions(deadline=1e-9)
        ).analyze()
        assert any(d.kind == "deadline" for d in degraded.degradations)
        for out, t in exact.output_times.items():
            assert degraded.output_times[out] >= t

    def test_hier_characterize_fault_degrades(self, csa4_design):
        plan = FaultPlan().add("hier.characterize", "exception", times=-1)
        degraded = HierarchicalAnalyzer(
            csa4_design, options=AnalysisOptions(fault_plan=plan)
        ).analyze()
        exact = HierarchicalAnalyzer(csa4_design).analyze()
        assert degraded.degradations
        for out, t in exact.output_times.items():
            assert degraded.output_times[out] >= t

    def test_lazy_analysis_degrades_per_port(self, csa4_design):
        plan = FaultPlan().add("hier.characterize", "exception", times=1)
        degraded = HierarchicalAnalyzer(
            csa4_design, options=AnalysisOptions(fault_plan=plan)
        ).analyze_lazy()
        exact = HierarchicalAnalyzer(csa4_design).analyze_lazy()
        assert degraded.degradations
        for out, t in exact.output_times.items():
            assert degraded.output_times[out] >= t

    def test_demand_refine_fault_keeps_conservative(self, csa4_design):
        plan = FaultPlan().add("demand.refine", "exception", times=-1)
        degraded = DemandDrivenAnalyzer(
            csa4_design, options=AnalysisOptions(fault_plan=plan)
        ).analyze()
        exact = DemandDrivenAnalyzer(csa4_design).analyze()
        assert degraded.degradations
        assert degraded.delay >= exact.delay
        assert degraded.delay <= degraded.topological_delay
        # With every refinement failing, nothing improves.
        assert degraded.delay == degraded.topological_delay

    def test_demand_refine_budget(self, csa4_design):
        capped = DemandDrivenAnalyzer(
            csa4_design, options=AnalysisOptions(refine_budget=0)
        ).analyze()
        assert capped.delay == capped.topological_delay
        assert any(
            d.kind == "refinement-budget" for d in capped.degradations
        )
        uncapped = DemandDrivenAnalyzer(csa4_design).analyze()
        assert uncapped.delay <= capped.delay
        assert not uncapped.degradations

    def test_demand_deadline(self, csa4_design):
        degraded = DemandDrivenAnalyzer(
            csa4_design, options=AnalysisOptions(deadline=1e-9)
        ).analyze()
        assert any(d.kind == "deadline" for d in degraded.degradations)
        assert degraded.delay == degraded.topological_delay

    def test_degradations_serialize(self, csa4_design):
        plan = FaultPlan().add("demand.refine", "exception", times=1)
        result = DemandDrivenAnalyzer(
            csa4_design, options=AnalysisOptions(fault_plan=plan)
        ).analyze()
        payload = result.to_dict()
        assert payload["degradations"]
        assert {"kind", "subject", "detail", "fallback"} <= set(
            payload["degradations"][0]
        )

    def test_session_surfaces_degradations(self, csa4_design):
        plan = FaultPlan().add("demand.refine", "exception", times=1)
        session = AnalysisSession(
            csa4_design, options=AnalysisOptions(fault_plan=plan)
        )
        result = session.demand_driven()
        assert result.degradations


# ------------------------------------------------------------------------ CLI
class TestCLIFailSafe:
    def test_binary_input_exits_2_with_one_line(self, tmp_path, capsys):
        bad = tmp_path / "junk.bench"
        bad.write_bytes(b"\x80\x81\xff binary garbage \x00")
        rc = main(["report", str(bad)])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_file_exits_2(self, capsys):
        rc = main(["report", "does/not/exist.bench"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")

    def test_bad_inject_spec_exits_2(self, capsys):
        rc = main(["hier-report", EXAMPLE, "--inject", "nonsense"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "fault spec" in err

    def test_bad_deadline_exits_2(self, capsys):
        rc = main(["hier-report", EXAMPLE, "--deadline", "-1"])
        assert rc == 2

    @pytest.mark.faulty
    def test_injected_interrupt_exits_130(self, capsys):
        rc = main([
            "hier-report", EXAMPLE, "--jobs", "2",
            "--inject", "scheduler.serial:interrupt",
        ])
        err = capsys.readouterr().err
        assert rc == 130
        assert "interrupted" in err

    @pytest.mark.faulty
    def test_fault_injected_report_is_conservative(self, capsys):
        # The ISSUE acceptance scenario: a fault-injected hier-report
        # completes without a traceback, reports its degradations, and
        # its arrival times bound the fault-free run from above.
        def delays(argv):
            rc = main(argv)
            out = capsys.readouterr().out
            assert rc == 0
            times = {}
            for line in out.splitlines():
                parts = line.split()
                if len(parts) == 2 and parts[0].startswith(("s", "c")):
                    try:
                        times[parts[0]] = float(parts[1])
                    except ValueError:
                        pass
            return out, times

        clean_out, clean = delays(["hier-report", EXAMPLE, "--jobs", "2"])
        assert "degradations" not in clean_out
        fault_out, faulted = delays([
            "hier-report", EXAMPLE, "--jobs", "2",
            "--inject", "scheduler.serial:exception:1",
        ])
        assert "conservative degradations" in fault_out
        assert clean and set(clean) == set(faulted)
        for out, t in clean.items():
            assert faulted[out] >= t
