"""Tests for required-time analysis (approximate and exact)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block
from repro.circuits.random_logic import random_network
from repro.core.required import (
    NEG_INF,
    POS_INF,
    approx_required_tuples,
    characterize_network,
    characterize_output,
    exact_required_relation,
    exact_required_tuples_for_vector,
)
from repro.errors import AnalysisError
from repro.netlist.network import Network
from repro.sim.timed import brute_force_stable_at, vector_output_delay
from repro.sim.vectors import all_vectors


class TestPaperModels:
    """Section 3.1 numbers for the 2-bit carry-skip block."""

    def test_s0_is_topological(self, csa_block2):
        model = characterize_output(csa_block2, "s0")
        # cone support is (c_in, a0, b0) only
        assert model.inputs == ("c_in", "a0", "b0")
        assert model.tuples == ((2.0, 4.0, 4.0),)

    def test_s1_is_topological(self, csa_block2):
        model = characterize_output(csa_block2, "s1")
        assert model.tuples == ((4.0, 6.0, 6.0, 4.0, 4.0),)

    def test_cout_detects_skip_false_path(self, csa_block2):
        model = characterize_output(csa_block2, "c_out")
        assert model.tuples == ((2.0, 8.0, 8.0, 6.0, 6.0),)

    def test_characterize_network_pads_missing_support(self, csa_block2):
        models = characterize_network(csa_block2)
        assert models["s0"].inputs == csa_block2.inputs
        assert models["s0"].tuples == ((2.0, 4.0, 4.0, NEG_INF, NEG_INF),)


class TestApproxAnalysis:
    def test_tuples_are_valid(self, csa_block2):
        """Every emitted tuple must actually certify stability (oracle)."""
        for out in csa_block2.outputs:
            result = approx_required_tuples(csa_block2, out)
            cone = csa_block2.extract_cone(out)
            for tup in result.tuples:
                arrival = dict(zip(result.inputs, tup))
                assert brute_force_stable_at(cone, out, result.required, arrival)

    def test_topological_baseline_recorded(self, csa_block2):
        result = approx_required_tuples(csa_block2, "c_out")
        assert result.topological == (-6.0, -8.0, -8.0, -6.0, -6.0)

    def test_tuples_never_tighter_than_topological(self, csa_block2):
        for out in csa_block2.outputs:
            result = approx_required_tuples(csa_block2, out)
            for tup in result.tuples:
                assert all(
                    t >= base - 1e-9
                    for t, base in zip(tup, result.topological)
                )

    def test_nonzero_required_time_shifts_tuples(self, csa_block2):
        at_zero = approx_required_tuples(csa_block2, "c_out", required=0.0)
        at_ten = approx_required_tuples(csa_block2, "c_out", required=10.0)
        assert at_ten.tuples == tuple(
            tuple(v + 10.0 for v in tup) for tup in at_zero.tuples
        )

    def test_constant_support_raises(self):
        net = Network()
        net.add_input("a")
        net.add_gate("k", "CONST1", [])
        net.set_outputs(["k"])
        with pytest.raises(AnalysisError):
            approx_required_tuples(net, "k")

    def test_incomparable_tuples_surface(self):
        # z = OR(a-chain, b-chain): either chain alone being stable-1 is
        # not enough (need value), but with OR both matter; instead use a
        # circuit with two alternative stabilizers: z = OR(a, b) with
        # different path lengths: relaxing a first vs b first yields
        # different valid tuples? For OR, stability needs both (when both
        # are 0), so tuples stay topological here — assert exactly that.
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("da", "BUF", ["a"], 3.0)
        net.add_gate("z", "OR", ["da", "b"], 1.0)
        net.set_outputs(["z"])
        result = approx_required_tuples(net, "z")
        assert result.tuples == ((-4.0, -1.0),)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_circuit_tuples_valid(self, seed):
        net = random_network(5, 12, seed=seed, num_outputs=1)
        out = net.outputs[0]
        result = approx_required_tuples(net, out)
        cone = net.extract_cone(out)
        for tup in result.tuples:
            arrival = dict(zip(result.inputs, tup))
            assert brute_force_stable_at(cone, out, 0.0, arrival)


class TestExactAnalysis:
    def test_paper_and_gate_example(self):
        """Section 2's AND example: (0,0) admits two incomparable tuples."""
        net = Network()
        net.add_inputs(["x1", "x2"])
        net.add_gate("z", "AND", ["x1", "x2"], 1.0)
        net.set_outputs(["z"])
        rel = exact_required_relation(net, "z", required=0.0)
        zero_zero = rel.tuples_for({"x1": False, "x2": False})
        assert set(zero_zero) == {(-1.0, POS_INF), (POS_INF, -1.0)}
        one_one = rel.tuples_for({"x1": True, "x2": True})
        assert one_one == ((-1.0, -1.0),)
        # (0,1): only x1's zero controls
        zero_one = rel.tuples_for({"x1": False, "x2": True})
        assert zero_one == ((-1.0, POS_INF),)

    def test_tuples_are_maximal_and_valid(self, csa_block2):
        # spot-check a handful of vectors on the real block
        vectors = [
            {"c_in": False, "a0": True, "b0": True, "a1": False, "b1": True},
            {"c_in": True, "a0": False, "b0": True, "a1": True, "b1": True},
        ]
        for vec in vectors:
            tuples = exact_required_tuples_for_vector(csa_block2, "c_out", vec)
            cone = csa_block2.extract_cone("c_out")
            for tup in tuples:
                arrival = dict(zip(cone.inputs, tup))
                # valid: stable by 0 under this vector
                assert (
                    vector_output_delay(cone, vec, "c_out", arrival) <= 1e-9
                )
                # maximal: loosening any finite entry by 1 breaks validity
                for i, value in enumerate(tup):
                    if value == POS_INF:
                        continue
                    loose = dict(arrival)
                    loose[cone.inputs[i]] = value + 1.0
                    assert (
                        vector_output_delay(cone, vec, "c_out", loose) > 1e-9
                    )

    def test_exact_at_least_as_loose_as_approx(self, csa_block2):
        """For each vector, the approx tuple is dominated by some exact one."""
        approx = approx_required_tuples(csa_block2, "c_out")
        rel = exact_required_relation(csa_block2, "c_out")
        for vec in all_vectors(rel.inputs):
            exact_tuples = rel.tuples_for(vec)
            for app in approx.tuples:
                assert any(
                    all(e >= a - 1e-9 for e, a in zip(ex, app))
                    for ex in exact_tuples
                ), (vec, app, exact_tuples)

    def test_support_cap(self):
        net = random_network(14, 20, seed=3, num_outputs=1)
        out = net.outputs[0]
        if len(net.support(out)) > 4:
            with pytest.raises(AnalysisError):
                exact_required_relation(net, out, max_support=4)
