"""Tests for hierarchical sequential designs."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.demand import flat_functional_delay
from repro.errors import NetlistError
from repro.seq.circuit import Flop
from repro.seq.generators import accumulator
from repro.seq.hier import SequentialDesign, registered_cascade


class TestConstruction:
    def test_q_must_be_top_input(self):
        core = cascade_adder(4, 2)
        with pytest.raises(NetlistError, match="Q net"):
            SequentialDesign(core, [Flop("f", d="s0", q="s1")])

    def test_d_must_be_top_output(self):
        core = cascade_adder(4, 2)
        with pytest.raises(NetlistError, match="D net"):
            SequentialDesign(core, [Flop("f", d="a0", q="b0")])

    def test_duplicate_q_rejected(self):
        core = cascade_adder(4, 2)
        with pytest.raises(NetlistError, match="duplicate"):
            SequentialDesign(
                core,
                [Flop("f1", d="s0", q="b0"), Flop("f2", d="s1", q="b0")],
            )

    def test_pin_partition(self):
        seq = registered_cascade(8, 2)
        assert "a0" in seq.primary_inputs
        assert "b0" not in seq.primary_inputs
        assert "c8" in seq.primary_outputs
        assert "s0" not in seq.primary_outputs


class TestClockPeriod:
    def test_matches_flat_sequential_analysis(self):
        """The hierarchical sequential clock period equals the flat one
        (registered accumulator over the same adder)."""
        hier = registered_cascade(8, 2)
        flat = accumulator(8, 2)
        assert hier.min_clock_period() == flat.min_clock_period()

    def test_functional_beats_topological(self):
        seq = registered_cascade(8, 2)
        report = seq.clock_report()
        assert report.period == 16.0
        assert report.topological_period == 26.0
        assert report.critical_endpoint == "s7"

    def test_clk_to_q_and_setup(self):
        seq = registered_cascade(8, 2)
        base = seq.min_clock_period()
        dressed = seq.min_clock_period(clk_to_q=1.0, setup=0.5)
        assert base < dressed <= base + 1.5

    def test_analyzer_cached_across_queries(self):
        seq = registered_cascade(8, 2)
        seq.min_clock_period()
        analyzer = seq._analyzer
        seq.min_clock_period(clk_to_q=2.0)
        assert seq._analyzer is analyzer  # refinements reused

    def test_input_constraint_validation(self):
        seq = registered_cascade(4, 2)
        with pytest.raises(NetlistError, match="register output"):
            seq.min_clock_period(input_arrival={"b0": 1.0})
        with pytest.raises(NetlistError, match="unknown"):
            seq.min_clock_period(input_arrival={"zz": 1.0})

    def test_endpoint_times_conservative_vs_flat(self):
        seq = registered_cascade(4, 2)
        report = seq.clock_report()
        _, flat_times, _ = flat_functional_delay(seq.core)
        for endpoint, t in report.endpoint_times.items():
            assert flat_times[endpoint] <= t + 1e-9
