"""Tests for the two-step hierarchical analyzer (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block, cascade_adder
from repro.circuits.partition import cascade_bipartition
from repro.circuits.random_logic import random_network
from repro.core.demand import flat_functional_delay
from repro.core.hier import (
    HierarchicalAnalyzer,
    IncrementalAnalyzer,
    topological_models,
)
from repro.core.xbd0 import functional_delays
from repro.errors import AnalysisError
from repro.sta.topological import arrival_times


class TestTopologicalModels:
    def test_matches_pin_to_pin(self, csa_block2):
        models = topological_models(csa_block2)
        assert models["c_out"].tuples == ((6.0, 8.0, 8.0, 6.0, 6.0),)
        assert models["s0"].tuples == ((2.0, 4.0, 4.0, float("-inf"),
                                        float("-inf")),)


class TestHierarchicalAnalysis:
    def test_fig2_cascade(self, csa4_design):
        result = HierarchicalAnalyzer(csa4_design).analyze()
        assert result.output_times["c4"] == 10.0
        assert result.net_times["c2"] == 8.0  # the 'tmp' signal
        assert result.delay == 12.0  # s3 = tmp + 4

    def test_matches_flat_on_cascades(self):
        for n, m in ((4, 2), (8, 2), (8, 4)):
            design = cascade_adder(n, m)
            hier = HierarchicalAnalyzer(design).analyze()
            flat_delay, flat_times, _ = flat_functional_delay(design)
            assert hier.delay == flat_delay
            for out, t in hier.output_times.items():
                assert t == pytest.approx(flat_times[out])

    def test_characterization_cached_across_analyses(self, csa4_design):
        analyzer = HierarchicalAnalyzer(csa4_design)
        first = analyzer.analyze()
        assert first.characterized_modules == ("csa_block2",)
        second = analyzer.analyze({"c_in": 3.0})
        assert second.characterized_modules == ()

    def test_different_arrivals_reuse_models(self, csa4_design):
        analyzer = HierarchicalAnalyzer(csa4_design)
        base = analyzer.analyze().delay
        shifted = analyzer.analyze({x: 5.0 for x in csa4_design.inputs}).delay
        assert shifted == base + 5.0

    def test_functional_mode_beats_topological_mode(self, csa4_design):
        functional = HierarchicalAnalyzer(csa4_design, functional=True)
        topological = HierarchicalAnalyzer(csa4_design, functional=False)
        f = functional.analyze().delay
        t = topological.analyze().delay
        assert f < t
        assert t == 14.0  # topological delay of the 4-bit cascade

    def test_undriven_output_detected(self):
        from repro.errors import NetlistError

        design = cascade_adder(4, 2)
        design.set_outputs(["ghost_net"])
        with pytest.raises(NetlistError):
            HierarchicalAnalyzer(design)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_conservative_on_random_bipartitions(self, seed):
        """topological >= hierarchical >= flat XBD0 (Theorem 1)."""
        net = random_network(6, 24, seed=seed, num_outputs=2)
        try:
            design = cascade_bipartition(net)
        except Exception:
            return  # degenerate partition; nothing to check
        flat = design.flatten()
        topo = max(arrival_times(flat)[o] for o in flat.outputs)
        hier = HierarchicalAnalyzer(design).analyze().delay
        exact = max(functional_delays(flat).values())
        assert exact <= hier + 1e-9
        assert hier <= topo + 1e-9


class TestInputSlack:
    def test_fig5_at_design_level(self):
        # single-block design: slack of c_in under arr(c_in)=5 is 1
        block = carry_skip_block(2)
        from repro.netlist.hierarchy import HierDesign, Module

        design = HierDesign("one")
        design.add_module(Module("blk", block))
        for x in block.inputs:
            design.add_input(x)
        conns = {p: p for p in block.inputs}
        conns.update({p: f"{p}_o" for p in block.outputs})
        design.add_instance("u0", "blk", conns)
        # Figure 5 talks about c_out specifically, so expose only it
        design.set_outputs(["c_out_o"])
        analyzer = HierarchicalAnalyzer(design)
        arr = {"c_in": 5.0}
        assert analyzer.analyze(arr).delay == 8.0
        assert analyzer.input_slack("c_in", arr) == 1.0

    def test_unknown_input_raises(self, csa4_design):
        with pytest.raises(AnalysisError):
            HierarchicalAnalyzer(csa4_design).input_slack("ghost")

    def test_slack_of_noncritical_input(self, csa4_design):
        analyzer = HierarchicalAnalyzer(csa4_design)
        base = analyzer.analyze().delay  # 12.0, critical via a0/b0->tmp->s3
        # c_in feeds the first block with effective delay 2 and rides the
        # same chain; it has generous slack
        slack = analyzer.input_slack("c_in")
        assert slack > 0
        bumped = analyzer.analyze({"c_in": slack}).delay
        assert bumped == base
        over = analyzer.analyze({"c_in": slack + 1.0}).delay
        assert over > base


class TestIncremental:
    def test_only_changed_module_recharacterized(self):
        design = cascade_adder(8, 2)
        analyzer = IncrementalAnalyzer(design)
        analyzer.analyze()
        assert analyzer.recharacterizations == {"csa_block2": 1}
        # swap in a plain ripple implementation of the same interface
        from repro.circuits.adders import carry_skip_block as mk

        replacement = mk(2)  # same structure; interface identical
        analyzer.replace_module("csa_block2", replacement)
        analyzer.analyze()
        assert analyzer.recharacterizations == {"csa_block2": 2}
        analyzer.analyze({"c_in": 1.0})
        assert analyzer.recharacterizations == {"csa_block2": 2}

    def test_incremental_matches_fresh_analysis(self):
        design = cascade_adder(8, 4)
        analyzer = IncrementalAnalyzer(design)
        analyzer.analyze()
        replacement = carry_skip_block(4)
        analyzer.replace_module("csa_block4", replacement)
        incremental = analyzer.analyze().delay
        fresh = HierarchicalAnalyzer(cascade_adder(8, 4)).analyze().delay
        assert incremental == fresh

    def test_interface_change_rejected(self):
        design = cascade_adder(4, 2)
        analyzer = IncrementalAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.replace_module("csa_block2", carry_skip_block(4))

    def test_unknown_module_rejected(self):
        design = cascade_adder(4, 2)
        analyzer = IncrementalAnalyzer(design)
        with pytest.raises(AnalysisError):
            analyzer.replace_module("nope", carry_skip_block(2))
