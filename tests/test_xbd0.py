"""Tests for the XBD0 stability-function engine (the core of the library)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block
from repro.circuits.random_logic import random_network
from repro.core.xbd0 import (
    NEG_INF,
    StabilityAnalyzer,
    circuit_delay,
    functional_delays,
    topological_upper_bound,
)
from repro.errors import AnalysisError
from repro.netlist.network import Network
from repro.sim.timed import brute_force_delay, brute_force_stable_at
from repro.sta.topological import arrival_times

ENGINES = ("sat", "bdd", "brute")


class TestStableAt:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_and_gate(self, and2, engine):
        analyzer = StabilityAnalyzer(and2, engine=engine)
        assert not analyzer.stable_at("z", 0.5)
        assert analyzer.stable_at("z", 1.0)
        assert analyzer.stable_at("z", 2.0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_carry_skip_known_threshold(self, csa_block2, engine):
        analyzer = StabilityAnalyzer(csa_block2, engine=engine)
        assert not analyzer.stable_at("c_out", 7.0)
        assert analyzer.stable_at("c_out", 8.0)

    def test_unconstrained_input_still_stabilizes_controlled_gate(self):
        # z = AND(a, b): with b unconstrained (-inf = always there) the
        # output still waits on a.
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        analyzer = StabilityAnalyzer(net, {"b": NEG_INF})
        assert analyzer.stable_at("z", 1.0)
        assert not analyzer.stable_at("z", 0.5)

    def test_never_arriving_input(self):
        # b arrives at +inf: output can never be stable for vectors that
        # depend on it, so stability must fail at any finite time.
        net = Network()
        net.add_inputs(["a", "b"])
        net.add_gate("z", "AND", ["a", "b"], 1.0)
        net.set_outputs(["z"])
        analyzer = StabilityAnalyzer(net, {"b": float("inf")})
        assert not analyzer.stable_at("z", 100.0)

    def test_paper_tuple_condition(self, csa_block2):
        # the (2,8,8,6,6) tuple: valid at exactly those offsets, invalid
        # if c_in is given one unit less margin
        good = {"c_in": -2.0, "a0": -8.0, "b0": -8.0, "a1": -6.0, "b1": -6.0}
        assert StabilityAnalyzer(csa_block2, good).stable_at("c_out", 0.0)
        bad = dict(good, c_in=-1.0)
        # loosening c_in by 1 keeps falsity? check against brute force
        expected = brute_force_stable_at(csa_block2, "c_out", 0.0, bad)
        assert StabilityAnalyzer(csa_block2, bad).stable_at(
            "c_out", 0.0
        ) == expected

    def test_monotone_in_time(self, csa_block2):
        analyzer = StabilityAnalyzer(csa_block2)
        times = [0.0, 2.0, 4.0, 6.0, 7.0, 8.0, 10.0]
        flags = [analyzer.stable_at("c_out", t) for t in times]
        # once stable, stays stable
        assert flags == sorted(flags)


class TestFunctionalDelay:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_carry_skip_all_outputs(self, csa_block2, engine):
        delays = functional_delays(csa_block2, engine=engine)
        assert delays == {"s0": 4.0, "s1": 6.0, "c_out": 8.0}

    def test_fig5_arrival_condition(self, csa_block2):
        delays = functional_delays(csa_block2, {"c_in": 5.0})
        assert delays["c_out"] == 8.0
        delays = functional_delays(csa_block2, {"c_in": 7.0})
        assert delays["c_out"] == 9.0

    def test_constant_output(self):
        net = Network()
        net.add_input("a")
        net.add_gate("k", "CONST1", [], 1.0)
        net.add_gate("z", "OR", ["a", "k"], 1.0)
        net.set_outputs(["z"])
        assert functional_delays(net)["z"] == NEG_INF

    def test_functionally_constant_but_not_structurally(self):
        # z = a AND NOT a == 0, but before 'a' arrives the gates can
        # glitch, so the stable time is the real path delay, not -inf.
        net = Network()
        net.add_input("a")
        net.add_gate("n", "NOT", ["a"], 1.0)
        net.add_gate("z", "AND", ["a", "n"], 1.0)
        net.set_outputs(["z"])
        assert functional_delays(net)["z"] == 2.0

    def test_circuit_delay_is_max(self, csa_block2):
        assert circuit_delay(csa_block2) == 8.0

    def test_unknown_output_raises(self, csa_block2):
        with pytest.raises(AnalysisError):
            StabilityAnalyzer(csa_block2).functional_delay("ghost")

    def test_false_path_visible_under_late_side_input(self, false_path_circuit):
        # all inputs at 0: chain dominates (delay 5)
        assert functional_delays(false_path_circuit)["z"] == 5.0
        # chain start 'a' delayed: when s=1 mux passes 'a' directly, but
        # when s=0 the chain matters -> both see a's lateness; the skip
        # keeps the delay at a+? check against the oracle
        arr = {"a": 10.0}
        want = brute_force_delay(false_path_circuit, "z", arr)
        assert functional_delays(false_path_circuit, arr)["z"] == want


class TestEnginesAgree:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_circuits_all_engines_match_oracle(self, seed):
        net = random_network(5, 12, seed=seed, num_outputs=2)
        for out in net.outputs:
            oracle = brute_force_delay(net, out)
            for engine in ENGINES:
                got = StabilityAnalyzer(net, engine=engine).functional_delay(out)
                assert got == pytest.approx(oracle), (out, engine)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.data())
    def test_random_arrival_conditions(self, seed, data):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        arrival = {
            x: float(data.draw(st.integers(-3, 3))) for x in net.inputs
        }
        out = net.outputs[0]
        oracle = brute_force_delay(net, out, arrival)
        got = StabilityAnalyzer(net, arrival).functional_delay(out)
        assert got == pytest.approx(oracle)


class TestBounds:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_delay_between_zero_and_topological(self, seed):
        net = random_network(6, 18, seed=seed, num_outputs=2)
        at = arrival_times(net)
        delays = functional_delays(net)
        for o in net.outputs:
            assert delays[o] <= at[o] + 1e-9

    def test_topological_upper_bound_helper(self, csa_block2):
        assert topological_upper_bound(csa_block2) == 8.0


class TestStats:
    def test_sat_calls_counted(self, csa_block2):
        analyzer = StabilityAnalyzer(csa_block2)
        analyzer.functional_delay("c_out")
        assert analyzer.stats["stability_checks"] > 0
        assert analyzer.stats["sat_calls"] > 0

    def test_brute_engine_rejects_wide_support(self):
        net = random_network(26, 30, seed=1, num_outputs=1)
        analyzer = StabilityAnalyzer(net, engine="brute")
        out = net.outputs[0]
        if len(net.support(out)) > 24:
            with pytest.raises(AnalysisError):
                analyzer.functional_delay(out)

    def test_unknown_engine_rejected(self, csa_block2):
        with pytest.raises(AnalysisError):
            StabilityAnalyzer(csa_block2, engine="magic")
