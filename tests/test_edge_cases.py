"""Edge-case and error-path tests across the library."""

import pytest

from repro.circuits.adders import cascade_adder
from repro.core.conditional import ConditionalAnalyzer
from repro.core.multilevel import _combine, compose_design_models
from repro.core.timing_model import NEG_INF
from repro.errors import AnalysisError, NetlistError, SolverError
from repro.netlist.hierarchy import HierDesign, Module
from repro.netlist.network import Network
from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolveResult


class TestNetworkEdges:
    def test_signals_order(self):
        net = Network()
        net.add_inputs(["b", "a"])
        net.add_gate("g", "AND", ["a", "b"])
        assert list(net.signals()) == ["b", "a", "g"]

    def test_fanouts_unknown_signal(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.fanouts("ghost")

    def test_transitive_fanin_unknown_signal(self):
        net = Network()
        net.add_input("a")
        with pytest.raises(NetlistError):
            net.transitive_fanin(["ghost"])

    def test_multi_output_same_signal(self):
        net = Network()
        net.add_input("a")
        net.add_gate("z", "BUF", ["a"])
        net.set_outputs(["z", "z"])  # legal: same signal listed twice
        assert net.outputs == ("z", "z")

    def test_pi_as_output(self):
        net = Network()
        net.add_input("a")
        net.set_outputs(["a"])
        assert net.output_values({"a": True}) == {"a": True}

    def test_duplicate_fanin_allowed(self):
        net = Network()
        net.add_input("a")
        net.add_gate("z", "AND", ["a", "a"])
        net.set_outputs(["z"])
        assert net.output_values({"a": True}) == {"z": True}
        assert net.output_values({"a": False}) == {"z": False}


class TestHierarchyEdges:
    def test_flatten_custom_separator(self):
        design = cascade_adder(4, 2)
        flat = design.flatten(separator="__")
        assert flat.has_signal("u0__p0")
        assert not flat.has_signal("u0.p0")

    def test_module_port_views(self):
        design = cascade_adder(4, 2)
        module = design.modules["csa_block2"]
        assert module.inputs == ("c_in", "a0", "b0", "a1", "b1")
        assert module.outputs == ("s0", "s1", "c_out")

    def test_instance_net_of_unconnected(self):
        from repro.netlist.hierarchy import Instance

        inst = Instance("u", "m", {"a": "n"})
        assert inst.net_of("a") == "n"
        with pytest.raises(NetlistError):
            inst.net_of("ghost")

    def test_output_driven_by_top_input_passthrough(self):
        design = HierDesign("pt")
        net = Network("leaf")
        net.add_input("i")
        net.add_gate("o", "BUF", ["i"])
        net.set_outputs(["o"])
        design.add_module(Module("leaf", net))
        design.add_input("x")
        design.add_instance("u", "leaf", {"i": "x", "o": "y"})
        design.set_outputs(["x", "y"])  # a PI can be a design output
        design.validate()
        flat = design.flatten()
        assert flat.output_values({"x": True}) == {"x": True, "y": True}


class TestSolverEdges:
    def test_db_reduction_fires(self):
        """Pigeonhole with a tiny reduction threshold exercises _reduce_db."""
        cnf = CNF(20)

        def var(i, j):
            return 1 + i * 4 + j

        for i in range(5):
            cnf.add_clause(tuple(var(i, j) for j in range(4)))
        for j in range(4):
            for i1 in range(5):
                for i2 in range(i1 + 1, 5):
                    cnf.add_clause((-var(i1, j), -var(i2, j)))
        solver = Solver(cnf, reduce_base=10)
        assert solver.solve() is SolveResult.UNSAT
        # with the threshold this low, at least one reduction happened
        assert solver.stats["deleted"] >= 0  # counter exists
        if solver.stats["restarts"] > 0 and solver.stats["learned"] > 10:
            assert solver._reductions >= 1

    def test_solution_still_correct_after_reduction(self):
        import random

        rng = random.Random(7)
        cnf = CNF(30)
        for _ in range(120):
            clause = tuple(
                rng.choice((1, -1)) * rng.randint(1, 30) for _ in range(3)
            )
            cnf.add_clause(clause)
        reduced = Solver(cnf, reduce_base=5)
        plain = Solver(cnf)
        assert reduced.solve() == plain.solve()
        if reduced.solve() is SolveResult.SAT:
            assert cnf.evaluate(reduced.model())

    def test_solve_twice_consistent(self):
        cnf = CNF(3)
        cnf.add_clause((1, 2, 3))
        solver = Solver(cnf)
        assert solver.solve() is SolveResult.SAT
        assert solver.solve() is SolveResult.SAT

    def test_conflict_limit_zero_like(self):
        cnf = CNF(2)
        cnf.add_clause((1, 2))
        cnf.add_clause((-1, 2))
        cnf.add_clause((1, -2))
        cnf.add_clause((-1, -2))
        with pytest.raises(SolverError):
            Solver(cnf).solve(conflict_limit=1)


class TestMultilevelEdges:
    def test_combine_blowup_guard(self):
        width = 3
        # 13 constrained inputs × 2 tuples each = 8192 > 4096 combos
        module_tuple = tuple([1.0] * 13)
        choices = [
            ((1.0, NEG_INF, NEG_INF), (NEG_INF, 1.0, NEG_INF))
        ] * 13
        with pytest.raises(AnalysisError, match="blow-up"):
            _combine(module_tuple, choices, width)

    def test_combine_unconstrained_skipped(self):
        module_tuple = (NEG_INF, 2.0)
        choices = [
            ((99.0,),),            # ignored: delay is -inf
            ((3.0,),),
        ]
        result = _combine(module_tuple, choices, 1)
        assert result == [(5.0,)]

    def test_compose_rejects_undriven_output(self):
        design = cascade_adder(4, 2)
        design.set_outputs(["ghost"])
        with pytest.raises(Exception):
            compose_design_models(design)


class TestConditionalEdges:
    def test_cone_support_cap(self):
        design = cascade_adder(8, 8)  # one 8-bit block: 17-input cone
        analyzer = ConditionalAnalyzer(design, max_cone_support=4)
        vec = {x: False for x in design.inputs}
        with pytest.raises(AnalysisError, match="cap"):
            analyzer.analyze(vec)

    def test_conditional_result_values(self):
        design = cascade_adder(4, 2)
        analyzer = ConditionalAnalyzer(design)
        vec = {x: True for x in design.inputs}
        result = analyzer.analyze(vec)
        # 0b1111 + 0b1111 + 1 = 0b11111
        assert result.net_values["c4"] is True
        assert all(result.net_values[f"s{i}"] for i in range(4))
