"""Overload protection: admission control, breaker degradation, drain.

The serving contract under test: a saturated, faulted, or draining
server never hangs a socket and never answers a raw 500 — excess load
is shed with structured 503s, kernel failures degrade to conservative
topological-bound 200s (sound by Theorem 1), and SIGTERM/Ctrl-C drains
before exit.
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import cascade_adder
from repro.resilience import BreakerConfig, CircuitBreaker, FaultPlan
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, BreakerOpen
from repro.server import (
    AdmissionGate,
    CoalesceConfig,
    DegradedRow,
    DesignRegistry,
    TimingServerApp,
    start_server,
)


# --------------------------------------------------------------------- helpers
class FakeClock:
    """Deterministic monotonic clock for breaker/gate state machines."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def call(app, method, path, payload=None, raw=None):
    """One app round trip, JSON-decoded."""
    body = raw if raw is not None else (
        b"" if payload is None else json.dumps(payload).encode()
    )
    status, ctype, out = app.handle(method, path, body)
    doc = json.loads(out) if ctype.startswith("application/json") else out
    return status, doc


def make_app(**kw):
    kw.setdefault("coalesce", CoalesceConfig(max_batch=8))
    app = TimingServerApp(**kw)
    app.registry.register_design(cascade_adder(4, 2))
    return app


# ------------------------------------------------------------- circuit breaker
class TestCircuitBreaker:
    def make(self, failures=3, reset=5.0, **kw):
        clock = FakeClock()
        config = BreakerConfig(
            failure_threshold=failures, reset_timeout=reset, **kw
        )
        return CircuitBreaker("dut", config, clock=clock), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make(failures=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self.make(failures=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_reset_timeout(self):
        breaker, clock = self.make(failures=1, reset=5.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probes(self):
        breaker, clock = self.make(failures=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # claims the single probe slot
        assert not breaker.allow()  # concurrent second caller: fallback

    def test_probe_success_closes(self):
        breaker, clock = self.make(failures=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_clock(self):
        breaker, clock = self.make(failures=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(0.5)
        assert breaker.state == OPEN  # reset clock restarted at reopen
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN

    def test_call_raises_breaker_open(self):
        breaker, _ = self.make(failures=1)
        with pytest.raises(RuntimeError, match="boom"):
            breaker.call(self._boom)
        with pytest.raises(BreakerOpen):
            breaker.call(self._boom)

    @staticmethod
    def _boom():
        raise RuntimeError("boom")

    def test_snapshot_counts_transitions_and_rejections(self):
        breaker, _ = self.make(failures=1)
        breaker.record_failure()
        breaker.allow()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["rejections"] == 1
        assert snap["transitions"] == {"closed>open": 1}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(probe_limit=0)


# -------------------------------------------------------------- admission gate
class TestAdmissionGate:
    def test_unbounded_always_admits(self):
        gate = AdmissionGate(max_inflight=None)
        for _ in range(100):
            ok, waited = gate.try_enter()
            assert ok and waited == 0.0

    def test_sheds_past_inflight_with_empty_queue(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        assert gate.try_enter() == (True, 0.0)
        ok, _ = gate.try_enter()
        assert not ok
        assert gate.shed == 1
        gate.leave()
        ok, _ = gate.try_enter()
        assert ok

    def test_queued_request_admitted_on_leave(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout=5.0)
        assert gate.try_enter()[0]
        got = []
        t = threading.Thread(target=lambda: got.append(gate.try_enter()))
        t.start()
        for _ in range(100):
            if gate.queued:
                break
            time.sleep(0.005)
        assert gate.queued == 1
        gate.leave()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert got[0][0] is True
        assert gate.inflight == 1

    def test_full_queue_sheds_immediately(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout=5.0)
        gate.try_enter()
        t = threading.Thread(target=gate.try_enter, daemon=True)
        t.start()
        for _ in range(100):
            if gate.queued:
                break
            time.sleep(0.005)
        t0 = time.monotonic()
        ok, _ = gate.try_enter()  # queue already holds one waiter
        assert not ok
        assert time.monotonic() - t0 < 1.0  # no queue wait for shed
        gate.leave()
        t.join(timeout=5.0)

    def test_queue_wait_times_out(self):
        gate = AdmissionGate(max_inflight=1, max_queue=4, queue_timeout=0.05)
        gate.try_enter()
        ok, waited = gate.try_enter()
        assert not ok
        assert waited >= 0.04
        assert gate.shed == 1
        assert gate.queued == 0

    def test_wait_idle(self):
        gate = AdmissionGate(max_inflight=2, max_queue=2)
        gate.try_enter()
        assert not gate.wait_idle(0.05)
        gate.leave()
        assert gate.wait_idle(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queue=-1)


# ------------------------------------------------------------ app-level limits
class TestAppOverload:
    def test_shed_is_structured_503_with_retry_hint(self):
        app = make_app(max_inflight=1, max_queue=0)
        try:
            ok, _ = app.admission.try_enter()  # occupy the only slot
            assert ok
            status, doc = call(
                app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}}
            )
            assert status == 503
            assert doc["error"]["code"] == "overloaded"
            assert isinstance(doc["retry_after_ms"], int)
            assert doc["retry_after_ms"] >= 10
            assert app.admission.shed == 1
            app.admission.leave()
            status, doc = call(
                app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}}
            )
            assert status == 200
        finally:
            app.close()

    def test_ungated_routes_answer_while_saturated(self):
        app = make_app(max_inflight=1, max_queue=0)
        try:
            app.admission.try_enter()
            for method, path in [
                ("GET", "/healthz"),
                ("GET", "/healthz/ready"),
                ("GET", "/metrics"),
                ("GET", "/trace"),
            ]:
                status, _ = call(app, method, path)
                assert status == 200, (method, path)
            app.admission.leave()
        finally:
            app.close()

    def test_bad_json_is_structured_400(self):
        app = make_app()
        try:
            status, doc = call(app, "POST", "/analyze", raw=b"{nope")
            assert status == 400
            assert doc["error"]["code"] == "bad-json"
            status, doc = call(app, "POST", "/analyze", raw=b"[1, 2]")
            assert status == 400
            assert doc["error"]["code"] == "bad-json"
        finally:
            app.close()

    def test_oversized_body_is_structured_413(self):
        app = make_app(max_body_bytes=64)
        try:
            status, doc = call(app, "POST", "/analyze", raw=b"x" * 65)
            assert status == 413
            assert doc["error"]["code"] == "body-too-large"
        finally:
            app.close()

    def test_healthz_reports_admission_and_breakers(self):
        app = make_app(max_inflight=3, max_queue=5)
        try:
            status, doc = call(app, "GET", "/healthz")
            assert status == 200
            assert doc["live"] and doc["ready"]
            assert doc["admission"]["max_inflight"] == 3
            assert doc["breakers"]["csa4_2"]["state"] == CLOSED
        finally:
            app.close()


class TestDrain:
    def test_drain_flips_readiness_and_sheds(self):
        app = make_app()
        try:
            status, _ = call(app, "GET", "/healthz/ready")
            assert status == 200
            app.begin_drain()
            status, doc = call(app, "GET", "/healthz/ready")
            assert status == 503 and doc["ready"] is False
            status, _ = call(app, "GET", "/healthz/live")
            assert status == 200  # liveness unaffected
            status, doc = call(
                app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}}
            )
            assert status == 503
            assert doc["error"]["code"] == "draining"
            status, doc = call(app, "GET", "/healthz")
            assert status == 200 and doc["ready"] is False
            assert app.drain(1.0) is True
        finally:
            app.close()

    def test_drain_waits_for_inflight(self):
        app = make_app(max_inflight=2, max_queue=2)
        try:
            app.admission.try_enter()  # a pinned in-flight request
            app.begin_drain()
            assert app.drain(0.1) is False  # still held: dirty drain
            app.admission.leave()
            assert app.drain(1.0) is True
        finally:
            app.close()


# ------------------------------------------------------- breaker + degradation
class TestDegradedServing:
    def test_kernel_fault_degrades_then_breaker_opens(self):
        plan = FaultPlan()
        app = make_app(
            fault_plan=plan,
            breaker=BreakerConfig(failure_threshold=2, reset_timeout=60.0),
        )
        try:
            req = {"design": "csa4_2", "arrival": {}}
            status, doc = call(app, "POST", "/analyze", req)
            assert status == 200 and "degraded" not in doc
            exact = doc["delay"]
            plan.add("server.propagate", kind="exception", times=2)
            for expected_kind in (
                "evaluation-error",
                "evaluation-error",
                "breaker-open",
            ):
                status, doc = call(app, "POST", "/analyze", req)
                assert status == 200
                assert doc["degraded"] is True
                assert doc["delay"] >= exact - 1e-9
                kinds = [d["kind"] for d in doc["degradations"]]
                assert expected_kind in kinds
            status, doc = call(app, "GET", "/healthz")
            assert doc["breakers"]["csa4_2"]["state"] == OPEN
            status, doc = call(app, "GET", "/designs")
            entry_doc = doc["designs"][0]
            assert entry_doc["degraded_requests"] == 3
            assert entry_doc["breaker"] == OPEN
        finally:
            app.close()

    def test_breaker_recovers_after_reset(self):
        plan = FaultPlan()
        app = make_app(
            fault_plan=plan,
            breaker=BreakerConfig(failure_threshold=1, reset_timeout=0.05),
        )
        try:
            req = {"design": "csa4_2", "arrival": {}}
            plan.add("server.propagate", kind="exception", times=1)
            status, doc = call(app, "POST", "/analyze", req)
            assert doc["degraded"] is True
            time.sleep(0.08)  # reset timeout elapses -> half-open probe
            status, doc = call(app, "POST", "/analyze", req)
            assert status == 200 and "degraded" not in doc
            status, doc = call(app, "GET", "/healthz")
            assert doc["breakers"]["csa4_2"]["state"] == CLOSED
        finally:
            app.close()

    def test_coalescer_flush_fault_still_answers_conservatively(self):
        plan = FaultPlan()
        app = make_app(fault_plan=plan)
        try:
            req = {"design": "csa4_2", "arrival": {}}
            status, doc = call(app, "POST", "/analyze", req)
            exact = doc["delay"]
            plan.add("coalescer.flush", kind="exception", times=1)
            status, doc = call(app, "POST", "/analyze", req)
            assert status == 200
            assert doc["degraded"] is True
            assert doc["delay"] >= exact - 1e-9
        finally:
            app.close()

    def test_batch_degrades_per_request(self):
        plan = FaultPlan()
        app = make_app(fault_plan=plan)
        try:
            req = {"design": "csa4_2", "scenarios": [{}, {"a0": 3.0}]}
            status, clean = call(app, "POST", "/batch", req)
            assert status == 200 and "degraded" not in clean
            plan.add("server.propagate", kind="exception", times=1)
            status, doc = call(app, "POST", "/batch", req)
            assert status == 200
            assert doc["degraded"] is True
            assert doc["count"] == 2
            for got, exact in zip(doc["delays"], clean["delays"]):
                assert got >= exact - 1e-9
        finally:
            app.close()

    def test_compile_fault_registers_topological_handle(self):
        plan = FaultPlan().add("server.compile", kind="exception", times=1)
        app = TimingServerApp(
            coalesce=CoalesceConfig(max_batch=4), fault_plan=plan
        )
        try:
            app.registry.register_design(cascade_adder(4, 2))
            status, doc = call(
                app, "POST", "/analyze", {"design": "csa4_2", "arrival": {}}
            )
            assert status == 200
            kinds = [d["kind"] for d in doc["degradations"]]
            assert "compile-error" in kinds
        finally:
            app.close()


class TestConservativeness:
    """Property: the degraded path is never optimistic (Theorem 1)."""

    @pytest.fixture(scope="class")
    def entry(self):
        registry = DesignRegistry(coalesce=CoalesceConfig(max_batch=4))
        yield registry.register_design(cascade_adder(4, 2))
        registry.close()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_degraded_rows_bound_exact_rows(self, entry, data):
        inputs = list(entry.handle.inputs)
        times = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=64.0, width=32),
                min_size=len(inputs),
                max_size=len(inputs),
            )
        )
        scenario = dict(zip(inputs, times))
        exact = entry.handle.propagate_rows(
            [scenario], nets=entry.handle.outputs
        )[0]
        degraded = entry.degraded_rows([scenario])[0]
        assert isinstance(degraded, DegradedRow)
        assert degraded.degradations
        for bound, truth in zip(degraded.row, exact):
            assert bound >= truth - 1e-9


# ------------------------------------------------------- eviction vs in-flight
class TestEvictionRace:
    def test_eviction_races_inflight_work(self):
        """LRU eviction must not lose or corrupt in-flight responses:
        every submit gets either a real row or a clean server-closed."""
        reg = DesignRegistry(
            max_designs=1,
            coalesce=CoalesceConfig(
                max_batch=4, max_wait=0.005, quiet_wait=0.002
            ),
        )
        first = reg.register_design(cascade_adder(4, 2))
        n_outputs = len(first.handle.outputs)
        outcomes = []
        lock = threading.Lock()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                outcome = first.coalescer.submit({})
                with lock:
                    outcomes.append(outcome)
                if not outcome.ok:
                    return  # coalescer drained by eviction

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.03)
        reg.register_design(cascade_adder(8, 2))  # evicts `first`
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive()
        assert outcomes
        assert any(o.ok for o in outcomes)
        for o in outcomes:
            if o.ok:
                row = o.value.row if isinstance(o.value, DegradedRow) else o.value
                assert len(row) == n_outputs
                assert all(isinstance(v, float) for v in row)
            else:
                assert o.error == "server-closed"
        reg.close()


# ------------------------------------------------------------- HTTP shell edge
class TestHTTPShell:
    def test_oversized_content_length_rejected_before_buffering(self):
        app = make_app(max_body_bytes=1024)
        server, thread = start_server(app, port=0)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                sock.sendall(
                    b"POST /analyze HTTP/1.1\r\n"
                    b"Content-Length: 999999999\r\n\r\n"
                )
                raw = _read_all(sock)
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"413" in head.split(b"\r\n")[0]
            doc = json.loads(body)
            assert doc["error"]["code"] == "body-too-large"
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_garbled_request_line_is_structured_400(self):
        app = make_app()
        server, thread = start_server(app, port=0)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                sock.sendall(b"NONSENSE\r\n\r\n")
                raw = _read_all(sock)
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n")[0]
            assert json.loads(body)["error"]["code"] == "bad-request-line"
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_bad_content_length_is_structured_400(self):
        app = make_app()
        server, thread = start_server(app, port=0)
        try:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                sock.sendall(
                    b"POST /analyze HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
                )
                raw = _read_all(sock)
            _, _, body = raw.partition(b"\r\n\r\n")
            assert json.loads(body)["error"]["code"] == "bad-content-length"
        finally:
            server.shutdown()
            thread.join(timeout=5)


def _read_all(sock):
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


# ------------------------------------------------------------------ chaos soak
@pytest.mark.slow
@pytest.mark.faulty
class TestChaosSoak:
    """Offered load above capacity plus injected faults: every
    connection still gets well-formed JSON, every degraded answer is
    conservative, no response is a raw 500."""

    CLIENTS = 8
    REQUESTS = 6

    def test_soak_never_hangs_never_500(self):
        plan = (
            FaultPlan()
            .add("server.propagate", kind="exception", times=4)
            .add("coalescer.flush", kind="exception", times=3)
            .add("server.propagate", kind="timeout", times=2, seconds=0.01)
        )
        app = TimingServerApp(
            coalesce=CoalesceConfig(max_batch=8),
            max_inflight=2,
            max_queue=2,
            queue_timeout=0.5,
            fault_plan=plan,
            breaker=BreakerConfig(failure_threshold=3, reset_timeout=0.05),
        )
        entry = app.registry.register_design(cascade_adder(8, 2))
        exact_delay = max(
            entry.handle.propagate_rows([{}], nets=entry.handle.outputs)[0]
        )
        server, thread = start_server(app, port=0)
        responses = []
        errors = []
        lock = threading.Lock()

        def client():
            body = json.dumps({"design": "csa8_2", "arrival": {}})
            for _ in range(self.REQUESTS):
                conn = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=30
                )
                try:
                    conn.request("POST", "/analyze", body)
                    resp = conn.getresponse()
                    doc = json.loads(resp.read())  # well-formed, always
                    with lock:
                        responses.append((resp.status, doc))
                except Exception as exc:  # noqa: BLE001 - recorded, asserted
                    with lock:
                        errors.append(exc)
                finally:
                    conn.close()

        threads = [
            threading.Thread(target=client) for _ in range(self.CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
            assert not t.is_alive(), "a soak client hung"
        try:
            assert not errors, errors
            assert len(responses) == self.CLIENTS * self.REQUESTS
            shed = degraded = ok = 0
            for status, doc in responses:
                assert status != 500, doc
                if status == 200:
                    ok += 1
                    # degraded or exact, the answer is never optimistic
                    assert doc["delay"] >= exact_delay - 1e-9
                    if doc.get("degraded"):
                        degraded += 1
                        assert doc["degradations"]
                else:
                    assert status == 503
                    assert doc["error"]["code"] in ("overloaded", "draining")
                    shed += 1
            assert ok > 0  # the server did real work under chaos
            # all injected evaluation faults were absorbed as degraded
            # 200s (or breaker-open answers), not surfaced as errors
            assert degraded > 0
        finally:
            server.shutdown()
            thread.join(timeout=10)


# ------------------------------------------------------------- CLI drain + 130
@pytest.mark.slow
class TestServeSignals:
    def _spawn(self, *extra):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0",
             "--drain-deadline", "3", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        url = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if "serving" in line:
                url = line.split()[-1]
                break
        assert url, "server never reported its address"
        return proc, url

    def test_sigint_drains_and_exits_130(self):
        proc, _ = self._spawn()
        try:
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 130
        assert "SIGINT received: draining" in out

    def test_sigterm_drains_and_exits_0(self):
        proc, url = self._spawn("--preload", "gen:csa4.2")
        try:
            import urllib.request

            with urllib.request.urlopen(url + "/healthz/ready") as r:
                assert r.status == 200
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "SIGTERM received: draining" in out
