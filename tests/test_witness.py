"""Tests for unstable-vector witnesses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.random_logic import random_network
from repro.core.instance_models import instance_care_network
from repro.core.xbd0 import StabilityAnalyzer
from repro.sim.timed import vector_output_delay


class TestWitness:
    @pytest.mark.parametrize("engine", ["sat", "bdd", "brute"])
    def test_witness_is_actually_late(self, csa_block2, engine):
        analyzer = StabilityAnalyzer(csa_block2, engine=engine)
        witness = analyzer.unstable_witness("c_out", 7.0)
        assert witness is not None
        # the per-vector calculus confirms the vector is late
        assert vector_output_delay(csa_block2, witness, "c_out") > 7.0

    @pytest.mark.parametrize("engine", ["sat", "bdd", "brute"])
    def test_no_witness_when_stable(self, csa_block2, engine):
        analyzer = StabilityAnalyzer(csa_block2, engine=engine)
        assert analyzer.unstable_witness("c_out", 8.0) is None

    def test_witness_respects_arrival_condition(self, csa_block2):
        arrival = {"c_in": 6.0}
        analyzer = StabilityAnalyzer(csa_block2, arrival)
        witness = analyzer.unstable_witness("c_out", 7.5)
        assert witness is not None
        assert vector_output_delay(
            csa_block2, witness, "c_out", arrival
        ) > 7.5
        assert analyzer.unstable_witness("c_out", 8.0) is None

    def test_witness_respects_care_set(self):
        """With the shared-select care network, only image vectors may be
        blamed."""
        from tests.test_instance_models import sdc_design

        design = sdc_design()
        module = design.modules["mux_mod"].network
        care = instance_care_network(design, "u_mux")
        # without care: a's chain makes z unstable at 3 under defaults
        free = StabilityAnalyzer(module)
        w1 = free.unstable_witness("z", 3.0)
        assert w1 is not None
        # with care (s always 1): z depends on s and b only; at 3.0 it
        # is already stable, so no witness exists inside the image
        constrained = StabilityAnalyzer(module, care=care)
        assert constrained.unstable_witness("z", 3.0) is None
        w2 = constrained.unstable_witness("z", 0.5)
        assert w2 is not None
        assert w2["s"] is True  # witnesses come from the image only

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(-1, 6))
    def test_witness_consistency_random(self, seed, t):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        out = net.outputs[0]
        analyzer = StabilityAnalyzer(net)
        witness = analyzer.unstable_witness(out, float(t))
        stable = analyzer.stable_at(out, float(t))
        if stable:
            assert witness is None
        else:
            assert witness is not None
            assert vector_output_delay(net, witness, out) > float(t)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_engines_agree_on_existence(self, seed):
        net = random_network(4, 10, seed=seed, num_outputs=1)
        out = net.outputs[0]
        t = 2.0
        flags = set()
        for engine in ("sat", "bdd", "brute"):
            analyzer = StabilityAnalyzer(net, engine=engine)
            flags.add(analyzer.unstable_witness(out, t) is None)
        assert len(flags) == 1
