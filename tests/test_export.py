"""Tests for the Chrome-trace and Prometheus exporters."""

import io
import json

from repro.circuits.adders import cascade_adder
from repro.core.demand import DemandDrivenAnalyzer
from repro.obs import (
    BUCKET_BOUNDS,
    JsonlSink,
    Metrics,
    RingBufferSink,
    TraceRecord,
    Tracer,
    chrome_trace_events,
    prometheus_name,
    render_prometheus,
    write_chrome_trace,
    write_prometheus,
)

REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}


def traced_run(exec_engine="interpreted"):
    """A demand-driven analysis of the paper's carry-skip cascade,
    traced into a ring buffer."""
    tracer = Tracer()
    sink = RingBufferSink()
    tracer.add_sink(sink)
    DemandDrivenAnalyzer(cascade_adder(8, 2), tracer=tracer).analyze(
        exec_engine=exec_engine
    )
    return tracer, sink


class TestChromeTrace:
    def test_events_carry_required_keys(self):
        _, sink = traced_run()
        events = chrome_trace_events(sink)
        assert events
        for event in events:
            assert REQUIRED_KEYS <= set(event), event
            assert event["ph"] in ("X", "i")
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            else:
                assert event["s"] == "t"

    def test_timestamps_non_negative_and_monotonic(self):
        _, sink = traced_run()
        ts = [e["ts"] for e in chrome_trace_events(sink)]
        assert all(t >= 0.0 for t in ts)
        assert ts == sorted(ts)

    def test_file_round_trips_json_loads(self, tmp_path):
        tracer, sink = traced_run()
        target = tmp_path / "trace.json"
        count = write_chrome_trace(target, sink, metrics=tracer.metrics)
        payload = json.loads(target.read_text())  # strict JSON
        assert len(payload["traceEvents"]) == count == len(sink)
        assert payload["displayTimeUnit"] == "ms"
        assert "counters" in payload["metrics"]

    def test_compiled_run_exports_kernel_spans(self):
        _, sink = traced_run(exec_engine="compiled")
        names = {e["name"] for e in chrome_trace_events(sink)}
        assert {
            "kernel-compile",
            "kernel-propagate",
            "refinement-step",
            "refinement-applied",
        } <= names

    def test_measured_event_becomes_complete_event(self):
        record = TraceRecord(
            kind="event", name="sat-call", t=2.0, seconds=0.5
        )
        (event,) = chrome_trace_events([record])
        assert event["ph"] == "X"
        assert event["ts"] == 1.5e6  # start = t - seconds, in µs
        assert event["dur"] == 0.5e6

    def test_nonfinite_args_stay_strict_json(self, tmp_path):
        record = TraceRecord(
            kind="event",
            name="refinement-applied",
            t=1.0,
            attrs={
                "weight_after": float("-inf"),
                "movement": float("nan"),
                "delay": 4.0,
            },
        )
        target = tmp_path / "trace.json"
        write_chrome_trace(target, [record])
        text = target.read_text()
        assert "Infinity" not in text and "NaN" not in text
        (event,) = json.loads(text)["traceEvents"]
        assert event["args"]["weight_after"] == "-inf"
        assert event["args"]["movement"] == "nan"
        assert event["args"]["delay"] == 4.0

    def test_export_from_jsonl_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(TraceRecord(kind="event", name="a", t=0.0))
            sink.emit(TraceRecord(kind="event", name="b", t=1.0))
        events = chrome_trace_events(path)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_write_to_stream(self):
        buf = io.StringIO()
        count = write_chrome_trace(
            buf, [TraceRecord(kind="event", name="e", t=0.0)]
        )
        assert count == 1
        assert json.loads(buf.getvalue())["traceEvents"][0]["name"] == "e"


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("kernel.compile_seconds") == (
            "kernel_compile_seconds"
        )
        assert prometheus_name("a b/c") == "a_b_c"
        assert prometheus_name("0bad") == "_0bad"
        assert prometheus_name("") == "_"

    def test_every_family_has_a_type_header(self):
        tracer, _ = traced_run(exec_engine="compiled")
        text = render_prometheus(tracer.metrics)
        types: dict[str, str] = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, family, kind = line.split()
                types[family] = kind
            elif line:
                family = line.split()[0].partition("{")[0]
                base = family
                for suffix in ("_count", "_sum", "_bucket"):
                    if family.endswith(suffix):
                        base = family[: -len(suffix)]
                assert base in types or family in types, line

    def test_counter_gauge_histogram_types(self):
        m = Metrics()
        m.counter("demand.edges_refined").inc(3)
        m.gauge("kernel.plan.nodes").set(17)
        m.histogram("kernel.batch_seconds").observe(0.5)
        m.histogram("kernel.batch_seconds").observe(1.5)
        text = render_prometheus(m)
        assert "# TYPE demand_edges_refined counter" in text
        assert "demand_edges_refined 3" in text
        assert "# TYPE kernel_plan_nodes gauge" in text
        assert "kernel_plan_nodes 17" in text
        assert "# TYPE kernel_batch_seconds histogram" in text
        assert "kernel_batch_seconds_count 2" in text
        assert "kernel_batch_seconds_sum 2" in text
        assert "kernel_batch_seconds_min 0.5" in text
        assert "kernel_batch_seconds_max 1.5" in text

    def test_histogram_buckets_cumulative_and_le_labelled(self):
        m = Metrics()
        h = m.histogram("kernel.batch_seconds")
        h.observe(0.5)
        h.observe(1.5)
        text = render_prometheus(m)
        bucket_lines = [
            ln
            for ln in text.splitlines()
            if ln.startswith("kernel_batch_seconds_bucket{")
        ]
        assert len(bucket_lines) == len(BUCKET_BOUNDS) + 1
        assert bucket_lines[-1] == (
            'kernel_batch_seconds_bucket{le="+Inf"} 2'
        )
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        assert counts == sorted(counts)  # cumulative, never decreasing
        # 0.5 lands in the le=1 bucket, 1.5 only past sqrt(10)~3.16.
        by_le = {
            ln.split('le="')[1].split('"')[0]: int(ln.rsplit(" ", 1)[1])
            for ln in bucket_lines
        }
        assert by_le["1"] == 1
        assert by_le["+Inf"] == 2

    def test_empty_histogram_has_no_min_max(self):
        m = Metrics()
        m.histogram("quiet")
        text = render_prometheus(m)
        assert "quiet_count 0" in text
        assert "quiet_min" not in text and "quiet_max" not in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Metrics()) == ""

    def test_write_returns_sample_count(self, tmp_path):
        m = Metrics()
        m.counter("c").inc()
        m.gauge("g").set(1)
        m.histogram("h").observe(2.0)
        target = tmp_path / "metrics.prom"
        # c, g, the bucket samples (bounds + +Inf), h_sum, h_count,
        # h_min, h_max
        expected = 2 + (len(BUCKET_BOUNDS) + 1) + 4
        assert write_prometheus(target, m) == expected
        lines = target.read_text().splitlines()
        samples = [ln for ln in lines if ln and not ln.startswith("#")]
        assert len(samples) == expected

    def test_render_deterministic(self):
        a, b = Metrics(), Metrics()
        for m, order in ((a, ("x", "y")), (b, ("y", "x"))):
            for name in order:
                m.counter(name).inc()
        assert render_prometheus(a) == render_prometheus(b)
