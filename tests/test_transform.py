"""Tests for netlist transformations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import carry_skip_block
from repro.circuits.random_logic import random_network
from repro.core.xbd0 import functional_delays
from repro.netlist.network import Network
from repro.netlist.ops import networks_equivalent_on
from repro.netlist.transform import (
    collapse_buffers,
    decompose_complex,
    propagate_constants,
    sweep,
)
from repro.sim.vectors import all_vectors, random_vectors
from repro.sta.topological import arrival_times, pin_to_pin_delay


class TestDecompose:
    def test_mux_function_preserved(self):
        block = carry_skip_block(2)
        dec = decompose_complex(block)
        assert networks_equivalent_on(
            block, dec, list(all_vectors(block.inputs))
        )

    def test_pin_to_pin_delays_preserved(self):
        block = carry_skip_block(2)
        dec = decompose_complex(block)
        for x in block.inputs:
            for o in block.outputs:
                assert pin_to_pin_delay(block, x, o) == pin_to_pin_delay(
                    dec, x, o
                )

    def test_wide_xor_decomposed(self):
        net = Network("px")
        net.add_inputs(["a", "b", "c", "d"])
        net.add_gate("z", "XNOR", ["a", "b", "c", "d"], 2.0)
        net.set_outputs(["z"])
        dec = decompose_complex(net)
        assert all(
            len(g.fanins) <= 2 for g in dec.gates.values()
        )
        assert networks_equivalent_on(
            net, dec, list(all_vectors(net.inputs))
        )
        assert pin_to_pin_delay(dec, "a", "z") == 2.0

    def test_decomposed_mux_loses_consensus_tightness(self):
        """The AND-OR mux has no consensus term: XBD0 of the decomposed
        carry-skip block is (weakly) more pessimistic on c_out under a
        late carry-in — a netlist-style fact the ablation bench shows."""
        block = carry_skip_block(2)
        dec = decompose_complex(block)
        arrival = {"c_in": 6.0}
        tight = functional_delays(block, arrival)["c_out"]
        loose = functional_delays(dec, arrival)["c_out"]
        assert loose >= tight

    def test_consensus_separation_canonical(self):
        """z = MUX(sel, d, d) with a late select: the primitive MUX is
        stable once d is (consensus); the AND-OR form waits for sel."""
        net = Network("cd")
        net.add_inputs(["sel", "d"])
        net.add_gate("z", "MUX", ["sel", "d", "d"], 1.0)
        net.set_outputs(["z"])
        arrival = {"sel": 10.0}
        assert functional_delays(net, arrival)["z"] == 1.0
        dec = decompose_complex(net)
        assert functional_delays(dec, arrival)["z"] == 11.0

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_equivalence(self, seed):
        net = random_network(5, 14, seed=seed, num_outputs=2)
        dec = decompose_complex(net)
        assert networks_equivalent_on(
            net, dec, random_vectors(net.inputs, 24, seed=seed)
        )


class TestConstants:
    def build(self) -> Network:
        net = Network("k")
        net.add_inputs(["a", "b"])
        net.add_gate("one", "CONST1", ())
        net.add_gate("zero", "CONST0", ())
        net.add_gate("and_dead", "AND", ["a", "zero"], 1.0)   # -> 0
        net.add_gate("or_live", "OR", ["a", "zero"], 1.0)     # -> BUF(a)
        net.add_gate("and_live", "AND", ["b", "one"], 1.0)    # -> BUF(b)
        net.add_gate("z", "OR", ["and_dead", "or_live", "and_live"], 1.0)
        net.set_outputs(["z"])
        return net

    def test_folding(self):
        net = self.build()
        folded = propagate_constants(net)
        assert folded.gate("and_dead").gtype.value == "CONST0"
        assert folded.gate("or_live").gtype.value == "BUF"
        assert networks_equivalent_on(
            net, folded, list(all_vectors(net.inputs))
        )

    def test_full_constant_collapse(self):
        net = Network("cc")
        net.add_input("a")
        net.add_gate("one", "CONST1", ())
        net.add_gate("none", "NOT", ["one"], 1.0)
        net.add_gate("z", "OR", ["none", "one"], 1.0)
        net.set_outputs(["z"])
        folded = propagate_constants(net)
        assert folded.gate("z").gtype.value == "CONST1"

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_equivalence(self, seed):
        net = random_network(5, 14, seed=seed, num_outputs=2)
        folded = propagate_constants(net)
        assert networks_equivalent_on(
            net, folded, random_vectors(net.inputs, 16, seed=seed)
        )


class TestSweepAndBuffers:
    def test_sweep_drops_dangling(self):
        net = Network("s")
        net.add_input("a")
        net.add_gate("used", "NOT", ["a"], 1.0)
        net.add_gate("dead", "NOT", ["a"], 1.0)
        net.add_gate("deader", "NOT", ["dead"], 1.0)
        net.set_outputs(["used"])
        swept = sweep(net)
        assert swept.num_gates() == 1
        assert not swept.has_signal("dead")

    def test_collapse_buffers(self):
        net = Network("b")
        net.add_input("a")
        net.add_gate("buf1", "BUF", ["a"], 0.0)
        net.add_gate("buf2", "BUF", ["buf1"], 0.0)
        net.add_gate("z", "NOT", ["buf2"], 1.0)
        net.set_outputs(["z"])
        collapsed = collapse_buffers(net)
        assert collapsed.num_gates() == 1
        assert collapsed.gate("z").fanins == ("a",)

    def test_collapse_keeps_output_buffers(self):
        net = Network("ob")
        net.add_input("a")
        net.add_gate("z", "BUF", ["a"], 0.0)
        net.set_outputs(["z"])
        collapsed = collapse_buffers(net)
        assert collapsed.outputs == ("z",)
        assert collapsed.has_signal("z")

    def test_collapse_keeps_delayed_buffers(self):
        net = Network("db")
        net.add_input("a")
        net.add_gate("slow", "BUF", ["a"], 2.0)
        net.add_gate("z", "NOT", ["slow"], 1.0)
        net.set_outputs(["z"])
        collapsed = collapse_buffers(net)
        assert collapsed.has_signal("slow")
        assert arrival_times(collapsed)["z"] == 3.0

    def test_flatten_then_collapse_roundtrip(self):
        from repro.circuits.adders import cascade_adder

        flat = cascade_adder(4, 2).flatten()
        collapsed = collapse_buffers(flat)
        assert collapsed.num_gates() < flat.num_gates()
        assert networks_equivalent_on(
            flat, collapsed, random_vectors(flat.inputs, 24, seed=2)
        )
        # zero-delay buffers never carried timing
        for o in flat.outputs:
            assert arrival_times(flat)[o] == arrival_times(collapsed)[o]


class TestConstantMuxXor:
    def test_mux_constant_select(self):
        net = Network("m")
        net.add_inputs(["a", "b"])
        net.add_gate("one", "CONST1", ())
        net.add_gate("z", "MUX", ["one", "a", "b"], 2.0)
        net.set_outputs(["z"])
        folded = propagate_constants(net)
        assert folded.gate("z").gtype.value == "BUF"
        assert folded.gate("z").fanins == ("b",)
        assert networks_equivalent_on(
            net, folded, list(all_vectors(net.inputs))
        )

    def test_mux_constant_select_and_data(self):
        net = Network("m2")
        net.add_input("a")
        net.add_gate("zero", "CONST0", ())
        net.add_gate("one", "CONST1", ())
        net.add_gate("z", "MUX", ["zero", "one", "a"], 2.0)
        net.set_outputs(["z"])
        folded = propagate_constants(net)
        assert folded.gate("z").gtype.value == "CONST1"

    def test_xor_with_constant_true_becomes_not(self):
        net = Network("x")
        net.add_input("a")
        net.add_gate("one", "CONST1", ())
        net.add_gate("z", "XOR", ["a", "one"], 2.0)
        net.set_outputs(["z"])
        folded = propagate_constants(net)
        assert folded.gate("z").gtype.value == "NOT"
        assert networks_equivalent_on(
            net, folded, list(all_vectors(net.inputs))
        )

    def test_xnor_with_constant_false(self):
        net = Network("x2")
        net.add_inputs(["a", "b"])
        net.add_gate("zero", "CONST0", ())
        net.add_gate("z", "XNOR", ["a", "zero", "b"], 2.0)
        net.set_outputs(["z"])
        folded = propagate_constants(net)
        assert folded.gate("z").gtype.value == "XNOR"
        assert folded.gate("z").fanins == ("a", "b")
        assert networks_equivalent_on(
            net, folded, list(all_vectors(net.inputs))
        )

    def test_wide_xor_two_true_constants_cancel(self):
        net = Network("x3")
        net.add_inputs(["a", "b"])
        net.add_gate("one1", "CONST1", ())
        net.add_gate("one2", "CONST1", ())
        net.add_gate("z", "XOR", ["a", "one1", "b", "one2"], 2.0)
        net.set_outputs(["z"])
        folded = propagate_constants(net)
        assert folded.gate("z").gtype.value == "XOR"
        assert networks_equivalent_on(
            net, folded, list(all_vectors(net.inputs))
        )
