"""Tests for the unified AnalysisSession/AnalysisOptions facade."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import AnalysisOptions, AnalysisSession, load_circuit_file
from repro.circuits.adders import cascade_adder
from repro.core.demand import DemandDrivenAnalyzer
from repro.core.hier import HierarchicalAnalyzer
from repro.core.result import AnalysisResult
from repro.core.subflat import SubcircuitFlatAnalyzer
from repro.core.xbd0 import functional_delays
from repro.errors import AnalysisError
from repro.netlist.hierarchy import HierDesign
from repro.netlist.network import Network
from repro.obs import NULL_TRACER, RingBufferSink, Tracer


@pytest.fixture()
def csa8_file(tmp_path) -> str:
    from repro.parsers.verilog import dumps_verilog

    f = tmp_path / "csa8_2.v"
    f.write_text(dumps_verilog(cascade_adder(8, 2, name="csa8_2")))
    return str(f)


class TestAnalysisOptions:
    def test_defaults(self):
        opts = AnalysisOptions()
        assert opts.engine == "sat"
        assert opts.functional is True
        assert opts.max_orders == 4
        assert opts.max_tuples == 8
        assert opts.jobs == 1
        assert opts.cache_dir is None
        assert opts.tracer is None
        assert opts.effective_tracer is NULL_TRACER

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            AnalysisOptions("bdd")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            AnalysisOptions().engine = "bdd"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "z3"},
            {"max_orders": 0},
            {"max_tuples": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisOptions(**kwargs)

    def test_jobs_clamped_and_cache_dir_coerced(self, tmp_path):
        opts = AnalysisOptions(jobs=0, cache_dir=str(tmp_path / "c"))
        assert opts.jobs == 1
        assert isinstance(opts.cache_dir, Path)

    def test_with_changes_revalidates(self):
        opts = AnalysisOptions(engine="bdd")
        changed = opts.with_changes(max_orders=2)
        assert changed.engine == "bdd" and changed.max_orders == 2
        assert opts.max_orders == 4  # original untouched
        with pytest.raises(ValueError):
            opts.with_changes(engine="nope")


class TestSessionHierarchical:
    def test_matches_legacy_analyzers(self, csa4_design):
        session = AnalysisSession(csa4_design)
        assert session.is_hierarchical
        legacy_hier = HierarchicalAnalyzer(csa4_design).analyze()
        legacy_demand = DemandDrivenAnalyzer(csa4_design).analyze()
        legacy_subflat = SubcircuitFlatAnalyzer(csa4_design).analyze()
        assert session.hierarchical().output_times == (
            legacy_hier.output_times
        )
        assert session.demand_driven().output_times == (
            legacy_demand.output_times
        )
        assert session.subflat().output_times == legacy_subflat.output_times

    def test_analyzers_cached_across_calls(self, csa4_design):
        session = AnalysisSession(csa4_design)
        session.demand_driven()
        first = session._analyzers["demand"]
        session.demand_driven({"c_in": 2.0})
        assert session._analyzers["demand"] is first

    def test_network_flattens_once(self, csa4_design):
        session = AnalysisSession(csa4_design)
        flat = session.network
        assert isinstance(flat, Network)
        assert session.network is flat
        assert session.functional_delays() == functional_delays(
            flat, engine="sat"
        )

    def test_explain_pin_requires_demand_run(self, csa4_design):
        session = AnalysisSession(csa4_design)
        with pytest.raises(AnalysisError):
            session.explain_pin("csa_block2", "c_in", "c_out")
        result = session.demand_driven()
        module, inp, out = result.refined_weights and next(
            iter(result.refined_weights)
        )
        assert session.explain_pin(module, inp, out) is not None

    def test_conditional(self, csa4_design):
        session = AnalysisSession(csa4_design)
        vector = {x: False for x in csa4_design.inputs}
        result = session.conditional(vector)
        assert result.delay <= session.hierarchical().delay

    def test_session_shares_tracer_and_library(self, csa4_design, tmp_path):
        sink = RingBufferSink()
        session = AnalysisSession(
            csa4_design,
            cache_dir=tmp_path / "cache",
            tracer=Tracer(sinks=[sink]),
        )
        assert session.library is session.library  # created once
        session.hierarchical()
        names = sink.names()
        assert "characterize-module" in names
        assert "cache-store" in names
        assert session.library.stats.characterizations > 0

    def test_hier_report_text(self, csa4_design):
        text = AnalysisSession(csa4_design).hier_report()
        assert "csa4.2" in text or "Hierarchical" in text


class TestSessionFlat:
    def test_flat_session(self, csa_block2):
        session = AnalysisSession(csa_block2)
        assert not session.is_hierarchical
        assert session.network is csa_block2
        with pytest.raises(AnalysisError):
            session.design
        assert session.functional_delays() == functional_delays(
            csa_block2, engine="sat"
        )
        assert "Timing report" in session.report()

    def test_characterize_serial_matches_scheduler(
        self, csa_block2, tmp_path
    ):
        serial = AnalysisSession(csa_block2).characterize()
        cached = AnalysisSession(
            csa_block2, cache_dir=tmp_path / "c"
        ).characterize()
        assert {
            o: m.tuples for o, m in serial.items()
        } == {o: m.tuples for o, m in cached.items()}


class TestFromFile:
    def test_from_file_verilog_keeps_hierarchy(self, csa8_file):
        session = AnalysisSession.from_file(csa8_file, engine="sat")
        assert session.is_hierarchical
        assert isinstance(load_circuit_file(csa8_file), HierDesign)
        assert session.hierarchical().delay > 0

    def test_from_file_bench_is_flat(self, tmp_path, and2):
        from repro.parsers.bench import write_bench

        f = tmp_path / "and2.bench"
        with f.open("w") as fp:
            write_bench(and2, fp)
        session = AnalysisSession.from_file(f)
        assert not session.is_hierarchical


class TestResultProtocol:
    def test_all_results_satisfy_protocol(self, csa4_design):
        session = AnalysisSession(csa4_design)
        vector = {x: False for x in csa4_design.inputs}
        results = [
            session.hierarchical(),
            session.demand_driven(),
            session.subflat(),
            session.per_instance(),
            session.conditional(vector),
        ]
        for result in results:
            assert isinstance(result, AnalysisResult)
            assert result.arrival_times == result.output_times
            critical = result.critical_outputs()
            assert critical
            assert all(
                result.arrival_times[o] == pytest.approx(result.delay)
                for o in critical
            )
            snapshot = json.loads(json.dumps(result.to_dict()))
            assert snapshot["kind"] == type(result).__name__
            assert snapshot["delay"] == pytest.approx(result.delay)
            assert snapshot["arrival_times"] == result.arrival_times
            assert snapshot["elapsed_seconds"] >= 0.0


class TestRemovedShims:
    """The PR-2 rename shims escalated from warning to hard error."""

    def test_hier_characterized_removed(self, csa4_design):
        result = HierarchicalAnalyzer(csa4_design).analyze()
        with pytest.raises(AttributeError, match="characterized_modules"):
            result.characterized
        assert not hasattr(result, "characterized")
        assert result.characterized_modules

    def test_demand_seconds_removed(self, csa4_design):
        result = DemandDrivenAnalyzer(csa4_design).analyze()
        with pytest.raises(AttributeError, match="elapsed_seconds"):
            result.seconds
        assert result.elapsed_seconds >= 0.0

    def test_subflat_seconds_removed(self, csa4_design):
        result = SubcircuitFlatAnalyzer(csa4_design).analyze()
        with pytest.raises(AttributeError, match="elapsed_seconds"):
            result.seconds
        assert result.elapsed_seconds >= 0.0


class TestLegacyConstructors:
    def test_positional_engine_still_works(self, csa4_design):
        analyzer = HierarchicalAnalyzer(csa4_design, "sat")
        assert analyzer.engine == "sat"
        assert analyzer.options.engine == "sat"

    def test_options_bundle_equivalent(self, csa4_design):
        legacy = HierarchicalAnalyzer(
            csa4_design, engine="sat", max_orders=3, max_tuples=6
        )
        bundled = HierarchicalAnalyzer(
            csa4_design,
            options=AnalysisOptions(engine="sat", max_orders=3, max_tuples=6),
        )
        assert legacy.analyze().output_times == (
            bundled.analyze().output_times
        )


class TestCliTrace:
    """End-to-end smoke tests for the --trace/--profile/--trace-file flags."""

    def test_hier_report_trace_prints_phases(self, csa8_file, capsys):
        from repro.cli import main

        assert main(["hier-report", csa8_file]) == 0
        untraced = capsys.readouterr().out
        assert main(["hier-report", csa8_file, "--trace"]) == 0
        traced = capsys.readouterr().out
        # report body is byte-identical; the summary is appended
        assert traced.startswith(untraced.rstrip("\n"))
        assert "trace summary" in traced
        phase_seconds = {}
        for line in traced.splitlines():
            parts = line.split()
            if len(parts) == 3 and parts[0] in (
                "characterization", "propagation", "refinement", "cache"
            ):
                phase_seconds[parts[0]] = float(parts[1])
        assert set(phase_seconds) == {
            "characterization", "propagation", "refinement", "cache"
        }
        assert all(v >= 0.0 for v in phase_seconds.values())
        assert sum(phase_seconds.values()) > 0.0

    def test_trace_file_jsonl_event_census(self, csa8_file, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import read_jsonl

        trace = tmp_path / "trace.jsonl"
        assert main([
            "hier-report", csa8_file,
            "--cache-dir", str(tmp_path / "cache"),
            "--trace-file", str(trace),
        ]) == 0
        capsys.readouterr()
        records = read_jsonl(trace)
        names = {r.name for r in records}
        assert len(names) >= 5
        assert "characterize-module" in names
        assert "sat-call" in names

    def test_profile_prints_record_table(self, csa8_file, capsys):
        from repro.cli import main

        assert main(["hier-report", csa8_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "record" in out and "count" in out
