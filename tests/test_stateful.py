"""Stateful property tests: incremental network construction invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.netlist.gates import GateType
from repro.netlist.network import Network
from repro.sta.topological import arrival_times

_GATES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.NOT,
]


class NetworkMachine(RuleBasedStateMachine):
    """Randomly grow a network; structural invariants must always hold."""

    def __init__(self):
        super().__init__()
        self.net = Network("stateful")
        self.counter = 0

    def _fresh(self) -> str:
        self.counter += 1
        return f"s{self.counter}"

    @rule()
    def add_input(self):
        self.net.add_input(self._fresh())

    @precondition(lambda self: self.counter >= 1)
    @rule(data=st.data())
    def add_gate(self, data):
        signals = list(self.net.signals())
        gtype = data.draw(st.sampled_from(_GATES))
        arity = 1 if gtype is GateType.NOT else data.draw(st.integers(1, 3))
        fanins = [
            data.draw(st.sampled_from(signals)) for _ in range(arity)
        ]
        self.net.add_gate(self._fresh(), gtype, fanins)

    @precondition(lambda self: self.net.num_gates() >= 1)
    @rule(data=st.data())
    def declare_output(self, data):
        gates = list(self.net.gates)
        self.net.set_outputs([data.draw(st.sampled_from(gates))])

    @invariant()
    def topological_order_is_consistent(self):
        order = self.net.topological_order()
        assert len(order) == len(self.net.inputs) + self.net.num_gates()
        position = {s: i for i, s in enumerate(order)}
        for name in self.net.gates:
            for f in self.net.fanins(name):
                assert position[f] < position[name]

    @invariant()
    def fanin_fanout_duality(self):
        for s in self.net.signals():
            for sink in self.net.fanouts(s):
                assert s in self.net.fanins(sink)

    @invariant()
    def evaluation_total(self):
        if not self.net.inputs:
            return
        vec = {x: False for x in self.net.inputs}
        values = self.net.evaluate(vec)
        assert set(values) == set(self.net.signals())

    @invariant()
    def arrival_times_monotone_along_edges(self):
        if not self.net.inputs:
            return
        at = arrival_times(self.net)
        for name, gate in self.net.gates.items():
            for f in gate.fanins:
                if at[f] != float("-inf"):
                    assert at[name] >= at[f] + gate.delay - 1e-9


NetworkMachineTest = NetworkMachine.TestCase
NetworkMachineTest.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
